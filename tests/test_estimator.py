"""Unit tests for intermediate-size estimation (Section II-B-2).

These run against a live engine so the estimators see real heartbeat-style
progress (``d_read``, ``A_jf``) rather than mocks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import CurrentSizeEstimator, OracleEstimator, ProgressEstimator
from repro.engine import Simulation
from repro.schedulers import RandomScheduler
from repro.units import MB
from repro.workload import JobSpec
from repro.workload.apps import ApplicationModel


def make_sim(gamma=1.0, num_maps=6, num_reduces=4):
    app = ApplicationModel(
        name="est-app",
        map_rate=10 * MB,
        reduce_rate=50 * MB,
        map_output_ratio=1.0,
        output_gamma=gamma,
        task_overhead=0.0,
    )
    spec = JobSpec(
        job_id="01",
        app=app,
        input_size=num_maps * 100 * MB,
        num_maps=num_maps,
        num_reduces=num_reduces,
    )
    return Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=RandomScheduler(),
        jobs=[spec],
        seed=3,
    )


def first_running_map(sim):
    job = sim.tracker.active_jobs[0]
    running = job.running_maps()
    assert running, "no map is running yet"
    return job, running[0]


class TestProgressEstimator:
    """The paper's Formula (3): A_jf * B_j / d_read_j."""

    def test_exact_for_linear_output(self):
        sim = make_sim(gamma=1.0)
        sim.tracker.start()
        sim.sim.run(until=5.0)  # partway through the first map wave
        job, task = first_running_map(sim)
        now = sim.sim.now
        assert 0 < task.read_fraction(now) < 1
        est = ProgressEstimator().estimate(task, now)
        # linear accrual makes the extrapolation exact: I_hat == I
        assert np.allclose(est, job.I[task.index])

    def test_corrects_current_size_bias(self):
        sim = make_sim(gamma=1.0)
        sim.tracker.start()
        sim.sim.run(until=5.0)
        job, task = first_running_map(sim)
        now = sim.sim.now
        frac = task.read_fraction(now)
        progress = ProgressEstimator().estimate(task, now)
        current = CurrentSizeEstimator().estimate(task, now)
        # current-size underestimates by exactly the progress fraction
        assert np.allclose(current, progress * frac)

    def test_biased_when_output_is_nonlinear(self):
        # gamma != 1 models apps whose output accrues non-linearly with
        # input read; the extrapolation then misses by frac**(gamma-1)
        sim = make_sim(gamma=2.0)
        sim.tracker.start()
        sim.sim.run(until=5.0)
        job, task = first_running_map(sim)
        now = sim.sim.now
        frac = task.read_fraction(now)
        est = ProgressEstimator().estimate(task, now)
        assert np.allclose(est, job.I[task.index] * frac)

    def test_zero_progress_yields_zeros(self):
        sim = make_sim()
        sim.tracker.start()
        # run just past the first heartbeat so maps are placed but their
        # input flows have moved no bytes yet at t == placement instant
        job = None
        sim.sim.run(until=0.01)
        job = sim.tracker.active_jobs[0]
        for task in job.maps:
            if task.node is not None and task.d_read(sim.sim.now) == 0.0:
                est = ProgressEstimator().estimate(task, sim.sim.now)
                assert np.all(est == 0)
                return
        pytest.skip("every placed map had already made progress")

    def test_completed_map_returns_exact_row(self):
        sim = make_sim()
        sim.tracker.start()
        sim.sim.run(until=60.0)
        job = sim.tracker.active_jobs[0] if sim.tracker.active_jobs else sim.tracker.finished_jobs[0]
        done = [m for m in job.maps if m.done]
        assert done
        est = ProgressEstimator().estimate(done[0], sim.sim.now)
        assert np.array_equal(est, job.I[done[0].index])


class TestCurrentSizeEstimator:
    def test_tracks_current_output(self):
        sim = make_sim()
        sim.tracker.start()
        sim.sim.run(until=5.0)
        job, task = first_running_map(sim)
        now = sim.sim.now
        est = CurrentSizeEstimator().estimate(task, now)
        assert np.allclose(est, task.current_output(now))

    def test_grows_monotonically(self):
        sim = make_sim()
        sim.tracker.start()
        sim.sim.run(until=4.0)
        job, task = first_running_map(sim)
        e1 = CurrentSizeEstimator().estimate(task, sim.sim.now).sum()
        sim.sim.run(until=6.0)
        if not task.done:
            e2 = CurrentSizeEstimator().estimate(task, sim.sim.now).sum()
            assert e2 >= e1


class TestOracleEstimator:
    def test_always_exact(self):
        sim = make_sim(gamma=2.0)  # even under nonlinear accrual
        sim.tracker.start()
        sim.sim.run(until=5.0)
        job, task = first_running_map(sim)
        est = OracleEstimator().estimate(task, sim.sim.now)
        assert np.array_equal(est, job.I[task.index])


class TestEstimateMany:
    """The vectorised batch API must be bit-identical to the per-task loop."""

    ESTIMATORS = [ProgressEstimator, CurrentSizeEstimator, OracleEstimator]

    @pytest.mark.parametrize("est_cls", ESTIMATORS)
    @pytest.mark.parametrize("gamma", [1.0, 2.0])
    def test_matches_per_task_loop(self, est_cls, gamma):
        sim = make_sim(gamma=gamma)
        sim.tracker.start()
        sim.sim.run(until=30.0)  # mixed population: done + in-flight maps
        job = (sim.tracker.active_jobs or sim.tracker.finished_jobs)[0]
        tasks = [m for m in job.maps if m.done or m.node is not None]
        assert tasks
        est = est_cls()
        now = sim.sim.now
        many = est.estimate_many(tasks, now)
        loop = np.stack([est.estimate(t, now) for t in tasks])
        # exact equality: rows must be bit-identical, not merely close
        assert np.array_equal(many, loop)

    @pytest.mark.parametrize("est_cls", ESTIMATORS)
    def test_zero_progress_rows_match(self, est_cls):
        sim = make_sim()
        sim.tracker.start()
        sim.sim.run(until=0.0)  # placed at t=0, but no bytes read yet
        job = sim.tracker.active_jobs[0]
        now = sim.sim.now
        tasks = [
            m for m in job.maps if m.node is not None and m.d_read(now) == 0.0
        ]
        assert tasks, "no zero-progress placed maps at t=0"
        est = est_cls()
        many = est.estimate_many(tasks, now)
        loop = np.stack([est.estimate(t, now) for t in tasks])
        assert np.array_equal(many, loop)

    @pytest.mark.parametrize("est_cls", ESTIMATORS)
    def test_completed_maps_return_exact_rows(self, est_cls):
        sim = make_sim()
        sim.tracker.start()
        sim.sim.run(until=60.0)
        job = (sim.tracker.active_jobs or sim.tracker.finished_jobs)[0]
        done = [m for m in job.maps if m.done]
        assert done
        many = est_cls().estimate_many(done, sim.sim.now)
        assert np.array_equal(many, job.I[[m.index for m in done]])

    @pytest.mark.parametrize("est_cls", ESTIMATORS)
    def test_empty_batch_rejected(self, est_cls):
        with pytest.raises(ValueError):
            est_cls().estimate_many([], 0.0)


class TestPaperExample:
    """The 10 MB / 5 MB scenario of Section II-B-2.

    Map M2 will ultimately produce 10 MB for R1 but is 10 % done (so shows
    ~1 MB); M1 has produced 5 MB at 90 % done.  Current-size scoring ranks
    M1's node higher; progress extrapolation correctly ranks M2's node.
    """

    def test_extrapolation_reverses_ranking(self):
        B = 100.0  # input bytes per map
        d_read_m1, A_m1 = 90.0, 5.0
        d_read_m2, A_m2 = 10.0, 1.0
        est_m1 = A_m1 * B / d_read_m1   # ~5.6
        est_m2 = A_m2 * B / d_read_m2   # 10.0
        assert A_m1 > A_m2              # current size prefers M1
        assert est_m2 > est_m1          # extrapolation prefers M2
        assert est_m2 == pytest.approx(10.0)
