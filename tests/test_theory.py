"""Tests for the analytical offer-process model (repro.analysis.theory)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.theory import (
    AcceptanceStats,
    acceptance_stats,
    feasible_pmin,
    tradeoff_curve,
)
from repro.core import ExponentialModel, HyperbolicModel, LinearModel


class TestAcceptanceStats:
    def test_zero_threshold_accepts_everything_probabilistically(self):
        costs = [1.0, 2.0, 3.0]
        stats = acceptance_stats(costs, ExponentialModel(), 0.0)
        assert 0 < stats.accept_rate <= 1
        assert stats.expected_offers == pytest.approx(1 / stats.accept_rate)

    def test_accepted_cost_below_offer_mean(self):
        """The probability weighting is decreasing in cost, so accepted
        placements are cheaper than the raw offer average."""
        rng = np.random.default_rng(0)
        costs = rng.uniform(0.0, 100.0, size=500)
        for model in (ExponentialModel(), HyperbolicModel(), LinearModel()):
            stats = acceptance_stats(costs, model, 0.0)
            assert stats.expected_cost < costs.mean()
            assert stats.cost_reduction > 0

    def test_local_offers_always_accepted(self):
        stats = acceptance_stats([0.0, 0.0], ExponentialModel(), 0.9)
        assert stats.accept_rate == 1.0
        assert stats.expected_cost == 0.0

    def test_impossible_threshold(self):
        # uniform positive costs: every P == 1 - 1/e < 0.99
        stats = acceptance_stats([5.0, 5.0, 5.0], ExponentialModel(), 0.99)
        assert stats.accept_rate == 0.0
        assert stats.expected_offers == float("inf")
        assert np.isnan(stats.expected_cost)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            acceptance_stats([], ExponentialModel())
        with pytest.raises(ValueError):
            acceptance_stats([-1.0], ExponentialModel())
        with pytest.raises(ValueError):
            acceptance_stats([1.0], ExponentialModel(), p_min=1.5)


class TestTradeoffCurve:
    def test_monotone_cost_and_delay(self):
        rng = np.random.default_rng(1)
        costs = rng.exponential(10.0, size=1000)
        p_mins = [0.0, 0.2, 0.4, 0.55, 0.62]
        curve = tradeoff_curve(costs, ExponentialModel(), p_mins)
        ecosts = [s.expected_cost for s in curve]
        offers = [s.expected_offers for s in curve]
        assert all(b <= a + 1e-12 for a, b in zip(ecosts, ecosts[1:]))
        assert all(b >= a - 1e-12 for a, b in zip(offers, offers[1:]))

    def test_paper_operating_point_is_cheap(self):
        """At P_min = 0.4 the expected wait stays below ~2 offers while the
        accepted cost drops — why 0.4 'worked' on Palmetto."""
        rng = np.random.default_rng(2)
        # a mixture: some local (0-cost) offers, mostly remote
        costs = np.concatenate([
            np.zeros(200), rng.uniform(1, 10, size=800)
        ])
        stats = acceptance_stats(costs, ExponentialModel(), 0.4)
        assert stats.expected_offers < 2.5
        assert stats.cost_reduction > 0.1


class TestFeasiblePmin:
    def test_with_local_offer_is_one(self):
        assert feasible_pmin([0.0, 9.0], ExponentialModel()) == 1.0

    def test_uniform_costs_is_inverse_e(self):
        # all offers identical: P = 1 - e^-1 for each
        p = feasible_pmin([7.0, 7.0, 7.0], ExponentialModel())
        assert p == pytest.approx(1 - np.exp(-1))

    def test_threshold_above_feasible_never_places(self):
        costs = [3.0, 6.0, 9.0]
        ceiling = feasible_pmin(costs, ExponentialModel())
        stats = acceptance_stats(costs, ExponentialModel(),
                                 min(ceiling + 1e-6, 1.0))
        assert stats.accept_rate == 0.0


class TestAgainstMonteCarlo:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_matches_simulation_of_offer_process(self, seed):
        """The closed-form statistics agree with a direct Monte-Carlo of the
        accept/decline process."""
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.0, 20.0, size=50)
        model = ExponentialModel()
        p_min = 0.3
        stats = acceptance_stats(costs, model, p_min)

        mc = np.random.default_rng(seed + 1)
        accepted_costs = []
        offers_used = []
        for _ in range(3000):
            n = 0
            while True:
                n += 1
                c = float(mc.choice(costs))
                p = float(model.probability(float(np.mean(costs)), c))
                if p >= p_min and mc.random() < p:
                    accepted_costs.append(c)
                    offers_used.append(n)
                    break
                if n > 10_000:  # pragma: no cover - guards degenerate draws
                    break
        assert np.mean(accepted_costs) == pytest.approx(
            stats.expected_cost, rel=0.08
        )
        assert np.mean(offers_used) == pytest.approx(
            stats.expected_offers, rel=0.08
        )
