"""The hot-path wall-time profiler: attribution, nesting, safety.

The profiler's accounting contract is *self time*: a parent scope is
charged only for the wall time its children did not claim, so the table
sums to at most the profiled wall time.  Tests substitute the module
clock (:data:`repro.obs.profile._clock`) with a deterministic fake to pin
the arithmetic exactly, then one end-to-end run checks the acceptance
bar: a profiled simulation attributes >= 80 % of its wall time.
"""

from __future__ import annotations

import pytest

from repro.obs import profile
from repro.obs.profile import Profiler, profiled, table_from_doc


# helper callables at module level: component resolution keys off
# __qualname__, and test-local definitions would carry a
# "test_fn.<locals>." prefix that defeats the prefix table
class JobTracker:
    def _make_heartbeat(self):
        pass

    def _expire(self):
        pass


class FlowNetwork:
    def _settle(self):
        pass


class TelemetryMonitor:
    def sample(self):
        pass


class FakeClock:
    """A manually-advanced clock substituted for time.perf_counter."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock(monkeypatch):
    fake = FakeClock()
    monkeypatch.setattr(profile, "_clock", fake)
    return fake


# ----------------------------------------------------------------------
# self-time arithmetic
# ----------------------------------------------------------------------
def test_nested_scopes_charge_self_time(clock):
    prof = Profiler()
    with prof.scope("outer"):
        clock.advance(1.0)
        with prof.scope("inner"):
            clock.advance(3.0)
        clock.advance(0.5)
    assert prof.self_s["inner"] == pytest.approx(3.0)
    assert prof.self_s["outer"] == pytest.approx(1.5)  # 4.5 elapsed - 3.0 child
    assert prof.calls == {"outer": 1, "inner": 1}
    assert prof.attributed_s == pytest.approx(4.5)


def test_sibling_scopes_both_deducted_from_parent(clock):
    prof = Profiler()
    with prof.scope("parent"):
        with prof.scope("a"):
            clock.advance(1.0)
        with prof.scope("a"):
            clock.advance(2.0)
        with prof.scope("b"):
            clock.advance(4.0)
    assert prof.self_s["a"] == pytest.approx(3.0)
    assert prof.self_s["b"] == pytest.approx(4.0)
    assert prof.self_s["parent"] == pytest.approx(0.0)
    assert prof.calls["a"] == 2


def test_run_event_buckets_by_component(clock):
    prof = Profiler()
    tracker = JobTracker()

    def beat() -> None:
        clock.advance(2.0)

    tracker_beat = tracker._make_heartbeat
    prof.run_event(tracker_beat, ())
    prof.run_event(beat, ())
    # a known prefix maps to its component; an unknown qualname falls
    # into the default bucket of its qualname root
    assert prof.calls["tracker.heartbeat"] == 1
    assert prof.self_s[f"other.{beat.__qualname__.split('.')[0]}"] == (
        pytest.approx(2.0)
    )


def test_run_event_pops_on_exception(clock):
    prof = Profiler()

    def boom() -> None:
        clock.advance(1.0)
        raise RuntimeError("event failed")

    with pytest.raises(RuntimeError):
        prof.run_event(boom, ())
    assert prof._stack == []  # the scope stack unwound
    assert sum(prof.self_s.values()) == pytest.approx(1.0)


def test_component_resolution_table():
    prof = Profiler()
    tracker, net = JobTracker(), FlowNetwork()
    assert prof._component(tracker._make_heartbeat) == "tracker.heartbeat"
    assert prof._component(tracker._expire) == "tracker.other"
    assert prof._component(net._settle) == "network.tick"
    # resolution is cached per qualname
    assert "JobTracker._expire" in prof._component_cache


def test_component_unwraps_periodic_tasks():
    from repro.sim.events import Simulator

    sim = Simulator()
    task = sim.every(5.0, TelemetryMonitor().sample)
    prof = Profiler()
    assert prof._component(task._fire) == "telemetry"


# ----------------------------------------------------------------------
# the profiled() guard
# ----------------------------------------------------------------------
def test_profiled_installs_and_resets_active(clock):
    assert profile.ACTIVE is None
    with profiled() as prof:
        assert profile.ACTIVE is prof
        clock.advance(2.5)
    assert profile.ACTIVE is None
    assert prof.wall_s == pytest.approx(2.5)


def test_profiled_resets_active_on_exception(clock):
    with pytest.raises(ValueError):
        with profiled():
            raise ValueError("body failed")
    assert profile.ACTIVE is None


def test_nested_profiled_raises(clock):
    with profiled():
        with pytest.raises(RuntimeError):
            with profiled():
                pass
    assert profile.ACTIVE is None


# ----------------------------------------------------------------------
# document and table
# ----------------------------------------------------------------------
def test_doc_shape_and_table_round_trip(clock):
    with profiled() as prof:
        with prof.scope("network.refill"):
            clock.advance(3.0)
        with prof.scope("cost.reduce_costs"):
            clock.advance(1.0)
    doc = prof.to_doc()
    assert doc["format"] == "repro-profile"
    assert doc["version"] == 1
    assert doc["wall_s"] == pytest.approx(4.0)
    assert doc["coverage"] == pytest.approx(1.0)
    assert set(doc["components"]) == {"network.refill", "cost.reduce_costs"}
    assert doc["components"]["network.refill"]["calls"] == 1

    table = table_from_doc(doc)
    assert "network.refill" in table.splitlines()[1]  # hottest first
    assert "(total attributed)" in table
    top1 = table_from_doc(doc, top=1)
    assert "cost.reduce_costs" not in top1


# ----------------------------------------------------------------------
# end to end: a profiled simulation meets the coverage bar
# ----------------------------------------------------------------------
def test_profile_case_covers_engine_wall_time():
    from repro.experiments.perf import SMALL_CLUSTER, BenchCase, profile_case

    case = BenchCase("smoke", "pna-netcond", SMALL_CLUSTER, scale=0.05)
    doc = profile_case(case)
    assert doc["case"] == "smoke"
    assert doc["events"] > 0
    assert doc["components"], "attribution table must be non-empty"
    # the acceptance bar: >= 80 % of engine wall time attributed
    assert doc["coverage"] >= 0.8
    # the fused C tick absorbs settle/refill/horizon, so "network.tick"
    # is the one guaranteed fabric component (a standalone
    # "network.refill" bucket appears only on the non-fused paths)
    assert "network.tick" in doc["components"]
    # and profiling must not leak the active profiler
    assert profile.ACTIVE is None
