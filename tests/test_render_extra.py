"""Additional rendering tests: ASCII CDF geometry and table formatting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ascii_cdf, format_table


class TestAsciiCDFGeometry:
    def test_monotone_marks_per_series(self):
        """Within one series, marks never go down as x increases."""
        rng = np.random.default_rng(0)
        out = ascii_cdf({"s": rng.uniform(0, 10, 50)}, width=40, height=10)
        rows = [l.split("|", 1)[1] for l in out.splitlines()
                if "|" in l and l.strip()[0] in "01"]
        # column-wise: the highest mark row index must be non-increasing
        # (CDF goes up left to right == mark rises)
        top_mark = []
        for col in range(40):
            col_rows = [i for i, r in enumerate(rows) if col < len(r) and r[col] == "*"]
            top_mark.append(min(col_rows) if col_rows else None)
        seen = [t for t in top_mark if t is not None]
        assert all(b <= a for a, b in zip(seen, seen[1:]))

    def test_constant_series(self):
        out = ascii_cdf({"c": np.array([5.0, 5.0, 5.0])}, width=20, height=6)
        assert "*=c" in out

    def test_many_series_distinct_markers(self):
        series = {f"s{i}": np.array([float(i + 1)]) for i in range(4)}
        out = ascii_cdf(series, width=20, height=6)
        for marker in "*o+x":
            assert marker in out

    def test_axis_labels_present(self):
        out = ascii_cdf({"a": np.array([1.0, 2.0])}, xlabel="latency (s)")
        assert "latency (s)" in out
        assert "1.00 |" in out


class TestTableFormatting:
    def test_numeric_formats(self):
        out = format_table(["v"], [[0.0], [1234.5], [0.0001], [3.14159]])
        assert "0" in out
        assert "1.23e+03" in out or "1234" in out
        assert "0.0001" in out
        assert "3.14" in out

    def test_mixed_types(self):
        out = format_table(["a", "b"], [["text", 42], [None, 3.5]])
        assert "text" in out and "None" in out

    def test_empty_rows(self):
        out = format_table(["only", "headers"], [])
        assert "only" in out and "headers" in out
