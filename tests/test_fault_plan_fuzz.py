"""Fuzz/property tests for ``FaultPlan.from_json`` on malformed input.

A fault plan is the one piece of user-authored JSON the CLI accepts
(``repro run --faults plan.json``), so every way it can be malformed —
wrong top-level type, unknown keys, wrong field types, negative times,
node-and-rack both set, missing required fields — must surface as a
clean ``ValueError`` whose message names the offending field by path
(``crashes[0].at``), never a bare ``TypeError``/``KeyError`` traceback
from inside the dataclass machinery.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.faults import (
    FaultPlan,
    HeartbeatLoss,
    LinkDegradation,
    LinkFailure,
    NodeChurn,
    NodeCrash,
    NodeDecommission,
    SwitchFailure,
    TaskFailures,
    TrackerCrash,
)


def valid_plan() -> FaultPlan:
    return FaultPlan(
        crashes=(NodeCrash(at=10.0, node="r0n0", down_for=30.0),
                 NodeCrash(at=20.0, node="r1n1")),
        churn=NodeChurn(level=0.05, mean_downtime=60.0, nodes=("r0n0",)),
        task_failures=TaskFailures(prob=0.01),
        heartbeat_loss=HeartbeatLoss(prob=0.1),
        degradations=(
            LinkDegradation(at=5.0, duration=20.0, factor=0.5, node="r0n1"),
            LinkDegradation(at=6.0, duration=20.0, factor=0.5, rack="rack1"),
        ),
        tracker_crashes=(TrackerCrash(at=40.0, down_for=15.0),),
        link_failures=(
            LinkFailure(link=("edge0_0", "agg0_0"), duration=20.0, at=12.0),
            LinkFailure(node="r0n0", duration=10.0, every=60.0),
        ),
        switch_failures=(SwitchFailure(switch="agg0_1", duration=15.0, at=30.0),),
        decommissions=(NodeDecommission(at=25.0, node="r1n0"),),
    )


# ----------------------------------------------------------------------
# targeted malformed cases — each must name the offending field by path
# ----------------------------------------------------------------------
MALFORMED = [
    # wrong top-level type
    ("[1, 2]", "fault plan must be a JSON object"),
    ('"crashes"', "fault plan must be a JSON object"),
    ("3", "fault plan must be a JSON object"),
    ("null", "fault plan must be a JSON object"),
    # unknown top-level key
    ('{"crashs": []}', "unknown fault plan keys"),
    # wrong container types
    ('{"crashes": {"at": 1}}', "crashes: expected a list"),
    ('{"crashes": "r0n0"}', "crashes: expected a list"),
    ('{"crashes": 7}', "crashes: expected a list"),
    ('{"churn": [1]}', "churn: expected an object"),
    ('{"tracker_crashes": {"at": 1}}', "tracker_crashes: expected a list"),
    # entry of wrong type
    ('{"crashes": [42]}', "crashes[0]: expected an object"),
    ('{"degradations": [null]}', "degradations[0]: expected an object"),
    # unknown / missing fields, with index in the path
    ('{"crashes": [{"at": 1, "node": "n", "dwn": 2}]}',
     "crashes[0].dwn: unknown field"),
    ('{"crashes": [{"at": 1}]}', "crashes[0].node: missing required field"),
    ('{"crashes": [{"node": "n"}]}', "crashes[0].at: missing required field"),
    ('{"degradations": [{"at": 1, "factor": 0.5, "node": "n"}]}',
     "degradations[0].duration: missing required field"),
    ('{"tracker_crashes": [{"at": 1}]}',
     "tracker_crashes[0].down_for: missing required field"),
    # bad values — path plus the dataclass's own message
    ('{"crashes": [{"at": -1, "node": "n"}]}', "crashes[0]: at must be"),
    ('{"crashes": [{"at": "soon", "node": "n"}]}',
     "crashes[0]: at must be a number"),
    ('{"crashes": [{"at": 1, "node": ""}]}',
     "crashes[0]: node must be a non-empty string"),
    ('{"crashes": [{"at": 1, "node": "n", "down_for": 0}]}',
     "crashes[0]: down_for must be > 0"),
    ('{"crashes": [{"at": 1, "node": "n", "down_for": true}]}',
     "crashes[0]: down_for must be a number"),
    ('{"churn": {"level": 1.5}}', "churn: churn level must be in (0, 1)"),
    ('{"churn": {"level": "high"}}', "churn:"),
    ('{"task_failures": {"prob": -0.1}}',
     "task_failures: prob must be in [0, 1]"),
    ('{"heartbeat_loss": {"prob": 1.0}}',
     "heartbeat_loss: heartbeat loss prob must be < 1"),
    # node-and-rack both set (and neither set)
    ('{"degradations": [{"at": 1, "duration": 2, "factor": 0.5, '
     '"node": "n", "rack": "r"}]}',
     "degradations[0]: set exactly one of node/rack"),
    ('{"degradations": [{"at": 1, "duration": 2, "factor": 0.5}]}',
     "degradations[0]: set exactly one of node/rack"),
    ('{"degradations": [{"at": 1, "duration": 2, "factor": 0, "node": "n"}]}',
     "degradations[0]: factor must be finite and > 0"),
    ('{"tracker_crashes": [{"at": 1, "down_for": -5}]}',
     "tracker_crashes[0]: down_for must be"),
    # fabric faults: same path discipline for the new kinds
    ('{"link_failures": [{"link": ["a", "b"]}]}',
     "link_failures[0].duration: missing required field"),
    ('{"link_failures": [{"duration": 5}]}',
     "link_failures[0]: set exactly one of link/node"),
    ('{"link_failures": [{"duration": 5, "link": ["a", "b"], "node": "n"}]}',
     "link_failures[0]: set exactly one of link/node"),
    ('{"link_failures": [{"duration": 0, "node": "n"}]}',
     "link_failures[0]: duration must be > 0"),
    ('{"link_failures": [{"duration": 5, "link": ["a"]}]}',
     "link_failures[0]: link must name exactly two endpoints"),
    ('{"link_failures": [{"duration": 5, "link": ["a", "a"]}]}',
     "link_failures[0]: link endpoints must differ"),
    ('{"link_failures": [{"duration": 5, "node": "n", "at": 1, "every": 9}]}',
     "link_failures[0]: set exactly one of at/every"),
    ('{"link_failures": [{"duration": 5, "node": "n", "every": 0}]}',
     "link_failures[0]: every must be > 0"),
    ('{"link_failures": [{"duration": 5, "node": "n", "wat": 1}]}',
     "link_failures[0].wat: unknown field"),
    ('{"switch_failures": [{"duration": 5}]}',
     "switch_failures[0].switch: missing required field"),
    ('{"switch_failures": [{"switch": "agg0_0"}]}',
     "switch_failures[0].duration: missing required field"),
    ('{"switch_failures": [{"switch": "", "duration": 5}]}',
     "switch_failures[0]: switch must be a non-empty string"),
    ('{"switch_failures": [{"switch": "s", "duration": 5, "at": -1}]}',
     "switch_failures[0]: at must be"),
    ('{"switch_failures": "agg0_0"}', "switch_failures: expected a list"),
    # decommissions: same path discipline
    ('{"decommissions": {"at": 1}}', "decommissions: expected a list"),
    ('{"decommissions": [42]}', "decommissions[0]: expected an object"),
    ('{"decommissions": [{"node": "n"}]}',
     "decommissions[0].at: missing required field"),
    ('{"decommissions": [{"at": 1}]}',
     "decommissions[0].node: missing required field"),
    ('{"decommissions": [{"at": 1, "node": "n", "down_for": 5}]}',
     "decommissions[0].down_for: unknown field"),
    ('{"decommissions": [{"at": -1, "node": "n"}]}',
     "decommissions[0]: at must be"),
    ('{"decommissions": [{"at": "soon", "node": "n"}]}',
     "decommissions[0]: at must be a number"),
    ('{"decommissions": [{"at": 1, "node": ""}]}',
     "decommissions[0]: node must be a non-empty string"),
]


@pytest.mark.parametrize("text,needle", MALFORMED, ids=range(len(MALFORMED)))
def test_malformed_input_raises_clean_value_error(text, needle):
    with pytest.raises(ValueError) as exc_info:
        FaultPlan.from_json(text)
    assert needle in str(exc_info.value)


def test_invalid_json_is_a_value_error():
    # json.JSONDecodeError subclasses ValueError, so callers need only one
    # except clause for "bad plan file"
    with pytest.raises(ValueError):
        FaultPlan.from_json('{"crashes": [')


# ----------------------------------------------------------------------
# generative fuzz: random single-field corruption of a valid plan
# ----------------------------------------------------------------------
JUNK = [None, True, -1.0, float("nan"), float("inf"), "", "x", [],
        [1], {}, {"k": 1}, 2**80]


def _corrupt(doc, rng):
    """Corrupt one randomly chosen leaf of a plan dict; returns the path."""
    doc = json.loads(json.dumps(doc))  # deep copy
    sections = [k for k, v in doc.items() if v]
    section = str(rng.choice(sections))
    value = doc[section]
    if isinstance(value, list):
        i = int(rng.integers(len(value)))
        field = str(rng.choice(sorted(value[i])))
        value[i][field] = JUNK[int(rng.integers(len(JUNK)))]
        return doc, f"{section}[{i}]"
    field = str(rng.choice(sorted(value)))
    value[field] = JUNK[int(rng.integers(len(JUNK)))]
    return doc, section


def test_fuzz_single_field_corruption_never_leaks_a_traceback():
    rng = np.random.default_rng(1234)
    base = valid_plan().to_dict()
    survived = 0
    for _ in range(300):
        doc, path = _corrupt(base, rng)
        try:
            FaultPlan.from_dict(doc)
            survived += 1  # some junk is coincidentally valid (e.g. None)
        except ValueError as exc:
            # the error must point at the corrupted section
            assert path.split("[")[0] in str(exc), (path, str(exc))
        # any other exception type propagates and fails the test
    # sanity: the fuzzer is actually producing mostly-invalid documents
    assert survived < 150


def test_round_trip_identity():
    plan = valid_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert FaultPlan.from_dict(plan.to_dict()) == plan
    empty = FaultPlan()
    assert empty.empty
    assert FaultPlan.from_json(empty.to_json()) == empty


def test_round_trip_preserves_tuple_types():
    plan = FaultPlan.from_json(valid_plan().to_json())
    assert isinstance(plan.crashes, tuple)
    assert isinstance(plan.degradations, tuple)
    assert isinstance(plan.tracker_crashes, tuple)
    assert isinstance(plan.churn.nodes, tuple)
    assert isinstance(plan.link_failures, tuple)
    assert isinstance(plan.switch_failures, tuple)
    assert isinstance(plan.link_failures[0].link, tuple)
    assert isinstance(plan.decommissions, tuple)
