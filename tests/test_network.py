"""Unit tests for the flow-level network (repro.cluster.network)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster.network import FlowNetwork
from repro.cluster.topology import MatrixTopology, rack_topology, star_topology
from repro.sim import Simulator
from repro.units import MB, Gbps


def make_net(racks=2, per_rack=3, host_link=1 * Gbps, uplink=10 * Gbps, local=400 * MB):
    sim = Simulator()
    topo = rack_topology(racks, per_rack, host_link=host_link, tor_uplink=uplink)
    return sim, topo, FlowNetwork(sim, topo, local_bandwidth=local)


class TestSingleFlow:
    def test_duration_matches_capacity(self):
        sim, topo, net = make_net(host_link=1 * Gbps)
        done = []
        net.start_flow("r0n0", "r0n1", 1 * Gbps, on_complete=lambda f: done.append(sim.now))
        sim.run()
        # 1 Gbps of bytes over a 1 Gbps link = 1 second
        assert done == [pytest.approx(1.0, rel=1e-6)]

    def test_local_flow_uses_disk_rate(self):
        sim, topo, net = make_net(local=100 * MB)
        done = []
        net.start_flow("r0n0", "r0n0", 200 * MB, on_complete=lambda f: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0, rel=1e-6)]
        assert net.bytes_local == 200 * MB
        assert net.bytes_transferred == 0.0

    def test_local_rate_override(self):
        sim, topo, net = make_net(local=100 * MB)
        done = []
        net.start_flow(
            "r0n0", "r0n0", 100 * MB,
            on_complete=lambda f: done.append(sim.now), local_rate=50 * MB,
        )
        sim.run()
        assert done == [pytest.approx(2.0, rel=1e-6)]

    def test_max_rate_cap(self):
        sim, topo, net = make_net(host_link=1 * Gbps)
        done = []
        net.start_flow(
            "r0n0", "r0n1", 100 * MB,
            on_complete=lambda f: done.append(sim.now), max_rate=10 * MB,
        )
        sim.run()
        assert done == [pytest.approx(10.0, rel=1e-6)]

    def test_zero_size_completes_immediately(self):
        sim, topo, net = make_net()
        done = []
        net.start_flow("r0n0", "r0n1", 0.0, on_complete=lambda f: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_negative_size_rejected(self):
        sim, topo, net = make_net()
        with pytest.raises(ValueError):
            net.start_flow("r0n0", "r0n1", -1.0)

    def test_bad_max_rate_rejected(self):
        sim, topo, net = make_net()
        with pytest.raises(ValueError):
            net.start_flow("r0n0", "r0n1", 1.0, max_rate=0.0)

    def test_flow_progress_tracking(self):
        sim, topo, net = make_net(host_link=1 * Gbps)
        f = net.start_flow("r0n0", "r0n1", 2 * Gbps)
        sim.run(until=1.0)
        assert f.bytes_done(sim.now) == pytest.approx(1 * Gbps, rel=1e-6)
        assert f.progress(sim.now) == pytest.approx(0.5, rel=1e-6)
        sim.run()
        assert f.done
        assert f.progress(sim.now) == 1.0


class TestFairSharing:
    def test_two_flows_share_a_link(self):
        sim, topo, net = make_net(host_link=1 * Gbps)
        # both flows traverse r0n0's host link
        ends = {}
        net.start_flow("r0n0", "r0n1", 1 * Gbps, lambda f: ends.setdefault("a", sim.now))
        net.start_flow("r0n0", "r0n2", 1 * Gbps, lambda f: ends.setdefault("b", sim.now))
        sim.run()
        # each gets 0.5 Gbps while both active -> both finish at t=2
        assert ends["a"] == pytest.approx(2.0, rel=1e-6)
        assert ends["b"] == pytest.approx(2.0, rel=1e-6)

    def test_released_bandwidth_speeds_up_remaining_flow(self):
        sim, topo, net = make_net(host_link=1 * Gbps)
        ends = {}
        net.start_flow("r0n0", "r0n1", 0.5 * Gbps, lambda f: ends.setdefault("small", sim.now))
        net.start_flow("r0n0", "r0n2", 1.5 * Gbps, lambda f: ends.setdefault("big", sim.now))
        sim.run()
        # share 0.5 each until small drains 0.5 GB at t=1; big then has 1.0 GB
        # left at full 1 Gbps -> finishes at t=2
        assert ends["small"] == pytest.approx(1.0, rel=1e-6)
        assert ends["big"] == pytest.approx(2.0, rel=1e-6)

    def test_disjoint_flows_do_not_interact(self):
        sim, topo, net = make_net(host_link=1 * Gbps)
        ends = {}
        net.start_flow("r0n0", "r0n1", 1 * Gbps, lambda f: ends.setdefault("a", sim.now))
        net.start_flow("r1n0", "r1n1", 1 * Gbps, lambda f: ends.setdefault("b", sim.now))
        sim.run()
        assert ends["a"] == pytest.approx(1.0, rel=1e-6)
        assert ends["b"] == pytest.approx(1.0, rel=1e-6)

    def test_uplink_bottleneck(self):
        # 4 cross-rack flows from distinct sources to distinct sinks share
        # the 2-capacity uplink fabric
        sim = Simulator()
        topo = rack_topology(2, 4, host_link=1 * Gbps, tor_uplink=2 * Gbps)
        net = FlowNetwork(sim, topo)
        ends = {}
        for i in range(4):
            net.start_flow(
                f"r0n{i}", f"r1n{i}", 1 * Gbps,
                lambda f, i=i: ends.setdefault(i, sim.now),
            )
        sim.run()
        # each gets 0.5 Gbps (uplink fair share), finishing at t=2
        for i in range(4):
            assert ends[i] == pytest.approx(2.0, rel=1e-6)

    def test_capped_flow_leaves_bandwidth_to_others(self):
        sim, topo, net = make_net(host_link=1 * Gbps)
        ends = {}
        net.start_flow(
            "r0n0", "r0n1", 0.2 * Gbps,
            lambda f: ends.setdefault("capped", sim.now), max_rate=0.1 * Gbps,
        )
        net.start_flow("r0n0", "r0n2", 1.8 * Gbps, lambda f: ends.setdefault("free", sim.now))
        sim.run()
        # capped at 0.1; free flow gets 0.9 -> finishes at t=2.0
        assert ends["capped"] == pytest.approx(2.0, rel=1e-6)
        assert ends["free"] == pytest.approx(2.0, rel=1e-6)

    def test_max_min_no_link_oversubscribed(self):
        """Property: after arbitrary arrivals, no link carries more than its
        capacity and every active flow has a positive rate."""
        sim = Simulator()
        topo = rack_topology(3, 4, host_link=1 * Gbps, tor_uplink=4 * Gbps)
        net = FlowNetwork(sim, topo)
        rng = np.random.default_rng(0)
        hosts = topo.hosts
        for i in range(40):
            a, b = rng.choice(len(hosts), size=2, replace=False)
            net.start_flow(hosts[a], hosts[b], float(rng.uniform(1, 100) * MB))
        sim.run(until=0.001)  # force at least one reallocation
        loads: dict = {}
        for f in net._flows:
            assert f.rate > 0
            for link in f.route:
                loads[link] = loads.get(link, 0.0) + f.rate
        for link, load in loads.items():
            assert load <= topo.link_capacity(link) * (1 + 1e-9)

    def test_bytes_conservation(self):
        """Bytes reported as transferred equal the sum of completed sizes."""
        sim, topo, net = make_net()
        sizes = [10 * MB, 25 * MB, 5 * MB, 100 * MB]
        for i, s in enumerate(sizes):
            net.start_flow("r0n0", f"r1n{i % 3}", s)
        sim.run()
        assert net.bytes_transferred == pytest.approx(sum(sizes))
        assert net.flows_completed == len(sizes)
        assert net.active_flows == 0


class TestCancellation:
    def test_cancelled_flow_never_completes(self):
        sim, topo, net = make_net()
        done = []
        f = net.start_flow("r0n0", "r0n1", 1 * Gbps, lambda f: done.append(1))
        sim.schedule(0.1, lambda: net.cancel_flow(f))
        sim.run()
        assert done == []
        assert f.cancelled
        assert net.active_flows == 0

    def test_cancel_releases_bandwidth(self):
        sim, topo, net = make_net(host_link=1 * Gbps)
        ends = {}
        f1 = net.start_flow("r0n0", "r0n1", 1 * Gbps, lambda f: ends.setdefault("a", sim.now))
        net.start_flow("r0n0", "r0n2", 1 * Gbps, lambda f: ends.setdefault("b", sim.now))
        sim.schedule(1.0, lambda: net.cancel_flow(f1))
        sim.run()
        # b: 0.5 GB done at t=1, then full rate -> 0.5 remaining -> t=1.5
        assert ends["b"] == pytest.approx(1.5, rel=1e-6)
        assert "a" not in ends

    def test_cancel_is_idempotent(self):
        sim, topo, net = make_net()
        f = net.start_flow("r0n0", "r0n1", 1 * MB)
        net.cancel_flow(f)
        net.cancel_flow(f)
        sim.run()
        assert net.active_flows == 0


class TestPathRate:
    def test_idle_path_rate_is_bottleneck_estimate(self):
        sim, topo, net = make_net(host_link=1 * Gbps, uplink=10 * Gbps)
        # idle: new flow would get the full host link
        assert net.path_rate("r0n0", "r0n1") == pytest.approx(1 * Gbps)

    def test_path_rate_degrades_with_load(self):
        sim, topo, net = make_net(host_link=1 * Gbps)
        before = net.path_rate("r0n0", "r0n1")
        net.start_flow("r0n0", "r0n1", 1 * Gbps)
        sim.run(until=0.01)
        after = net.path_rate("r0n0", "r0n1")
        assert after == pytest.approx(before / 2)

    def test_local_path_rate_is_disk(self):
        sim, topo, net = make_net(local=123.0)
        assert net.path_rate("r0n0", "r0n0") == 123.0

    def test_rate_matrix_symmetric_with_disk_diagonal(self):
        sim, topo, net = make_net(local=400 * MB)
        r = net.rate_matrix()
        assert np.allclose(r, r.T)
        assert np.all(np.diag(r) == 400 * MB)


class TestStress:
    def test_many_random_flows_drain(self):
        sim = Simulator()
        topo = rack_topology(2, 5)
        net = FlowNetwork(sim, topo)
        rng = np.random.default_rng(42)
        hosts = topo.hosts
        done = []
        count = 200

        def launch(i):
            a, b = rng.choice(len(hosts), size=2, replace=False)
            net.start_flow(
                hosts[a], hosts[b], float(rng.uniform(0.1, 50) * MB),
                on_complete=lambda f: done.append(i),
            )

        for i in range(count):
            sim.schedule(float(rng.uniform(0, 5)), launch, i)
        sim.run()
        assert len(done) == count
        assert net.active_flows == 0

    def test_determinism(self):
        def run_once():
            sim = Simulator()
            topo = rack_topology(2, 4)
            net = FlowNetwork(sim, topo)
            rng = np.random.default_rng(7)
            ends = []
            for i in range(50):
                a, b = rng.choice(8, size=2, replace=False)
                sim.schedule(
                    float(rng.uniform(0, 2)),
                    lambda a=a, b=b: net.start_flow(
                        topo.hosts[a], topo.hosts[b],
                        float(rng.uniform(1, 20) * MB),
                        on_complete=lambda f: ends.append((f.fid, sim.now)),
                    ),
                )
            sim.run()
            return ends

        assert run_once() == run_once()
