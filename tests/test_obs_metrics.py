"""The time-series metrics plane: determinism, transparency, reconciliation.

Three contracts, in increasing order of subtlety:

1. **Export determinism** — same seed ⇒ byte-identical JSONL/CSV/Prometheus
   exports, with and without node churn (the plane uses no RNG and no
   host clock).
2. **Transparency** — a run with the plane on produces the *same event
   trace* as a run with it off: observation never shifts scheduling.
3. **Reconciliation** — the streaming summaries (histogram percentiles,
   sampled slot/link gauges) must agree with ground truth derived from the
   collector's exact records, to within the documented bucket error.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import ClusterSpec, Simulation, table2_batch
from repro.core import ProbabilisticNetworkAwareScheduler
from repro.engine import EngineConfig
from repro.faults import FaultPlan, NodeChurn
from repro.obs import Counter, Gauge, MetricsConfig, MetricsRegistry
from repro.obs.export import (
    metrics_csv,
    metrics_jsonl_lines,
    prometheus_text,
    read_metrics_jsonl,
    write_metrics_jsonl,
)
from repro.trace import events_to_jsonl

CLUSTER = ClusterSpec(num_racks=2, nodes_per_rack=3)
CHURN = FaultPlan(churn=NodeChurn(level=0.05, mean_downtime=60.0))


def run_once(config: EngineConfig, seed: int = 123) -> object:
    sim = Simulation(
        cluster=CLUSTER,
        scheduler=ProbabilisticNetworkAwareScheduler(),
        jobs=table2_batch("wordcount", scale=0.02)[:4],
        config=config,
        seed=seed,
    )
    result = sim.run()
    result.recorder = sim.recorder  # keep the trace for comparisons
    return result


# ----------------------------------------------------------------------
# export determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("churn", [False, True], ids=["healthy", "churn"])
def test_same_seed_byte_identical_exports(churn):
    config = EngineConfig(
        metrics=MetricsConfig(period=5.0, per_node=True),
        faults=CHURN if churn else None,
        tracker_expiry_interval=15.0 if churn else 600.0,
    )
    r1 = run_once(config)
    r2 = run_once(config)
    meta = {"scheduler": "probabilistic", "seed": 123}
    assert (
        metrics_jsonl_lines(r1.metrics, meta=meta)
        == metrics_jsonl_lines(r2.metrics, meta=meta)
    )
    assert metrics_csv(r1.metrics) == metrics_csv(r2.metrics)
    assert prometheus_text(r1.metrics) == prometheus_text(r2.metrics)
    # and the runs actually recorded something
    assert len(r1.metrics.sample_times) > 2
    assert r1.metrics.get("job_completion_s").count == 4


def test_jsonl_round_trip(tmp_path):
    config = EngineConfig(metrics=MetricsConfig(period=5.0))
    result = run_once(config)
    path = str(tmp_path / "metrics.jsonl")
    write_metrics_jsonl(result.metrics, path, meta={"seed": 123})
    write_metrics_jsonl(result.metrics, path, meta={"seed": 123}, append=True)
    runs = read_metrics_jsonl(path)
    assert len(runs) == 2
    assert runs[0]["meta"]["seed"] == 123
    assert runs[0]["series"] == runs[1]["series"]
    assert runs[0]["histograms"] == runs[1]["histograms"]
    names = {s["name"] for s in runs[0]["series"]}
    assert {"slots_busy", "net_active_flows", "assignments_total"} <= names


# ----------------------------------------------------------------------
# transparency: observation never shifts scheduling
# ----------------------------------------------------------------------
@pytest.mark.parametrize("churn", [False, True], ids=["healthy", "churn"])
def test_metrics_plane_leaves_trace_untouched(tmp_path, churn):
    base = EngineConfig(
        trace=True,
        faults=CHURN if churn else None,
        tracker_expiry_interval=15.0 if churn else 600.0,
    )
    plain = run_once(base)
    metered = run_once(
        EngineConfig(
            trace=True,
            metrics=MetricsConfig(period=2.0, per_node=True),
            faults=CHURN if churn else None,
            tracker_expiry_interval=15.0 if churn else 600.0,
        )
    )
    p_plain = str(tmp_path / "plain.jsonl")
    p_metered = str(tmp_path / "metered.jsonl")
    events_to_jsonl(plain.recorder.events, p_plain)
    events_to_jsonl(metered.recorder.events, p_metered)
    with open(p_plain, "rb") as a, open(p_metered, "rb") as b:
        assert a.read() == b.read()
    # the plain run kept no registry at all (zero-cost disabled path)
    assert plain.metrics is None
    assert metered.metrics is not None


# ----------------------------------------------------------------------
# reconciliation against collector ground truth
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def metered_result():
    return run_once(EngineConfig(metrics=MetricsConfig(period=2.0)))


def test_jct_histogram_brackets_exact_percentiles(metered_result):
    r = metered_result
    jct = np.sort(r.job_completion_times)
    hist = r.metrics.get("job_completion_s")
    assert hist.count == len(jct)
    growth = hist.hist.growth
    for q in (0.5, 0.9, 0.99):
        rank = max(1, math.ceil(q * len(jct)))
        true = jct[rank - 1]
        estimate = hist.quantile(q)
        assert true < estimate <= true * growth * (1 + 1e-12)


def test_task_histograms_match_collector(metered_result):
    r = metered_result
    for kind in ("map", "reduce"):
        durations = r.collector.task_durations(kind)
        hist = r.metrics.get("task_duration_s", kind=kind)
        assert hist.count == len(durations)
        # streaming mean is exact (running sum), to float tolerance
        assert hist.hist.mean == pytest.approx(durations.mean(), rel=1e-9)


def test_sampled_gauges_stay_physical(metered_result):
    r = metered_result
    caps = {"map": r.map_slots, "reduce": r.reduce_slots}
    for kind, cap in caps.items():
        values = [v for _, v in r.metrics.series("slots_busy", kind=kind)]
        assert values, "gauge series must not be empty"
        assert all(0 <= v <= cap for v in values)
        assert all(float(v).is_integer() for v in values)
        # the sampler must have caught the busy phase
        assert max(values) > 0
    # link utilisation is a fraction; float accumulation may peek a hair
    # over 1.0
    for stat in ("mean", "max"):
        utils = [v for _, v in r.metrics.series("net_link_util", stat=stat)]
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in utils)


def test_sampled_mean_tracks_occupancy_integral(metered_result):
    r = metered_result
    times = r.metrics.sample_times
    span = times[-1] - times[0]
    for kind, cap in (("map", r.map_slots), ("reduce", r.reduce_slots)):
        values = [v for _, v in r.metrics.series("slots_busy", kind=kind)]
        sampled_mean = sum(values) / len(values) / cap
        occ_t, occ_l = r.collector.occupancy_series(kind)
        area = float(np.sum(occ_l[:-1] * np.diff(occ_t)))
        exact_mean = area / (span * cap)
        assert sampled_mean == pytest.approx(exact_mean, abs=0.10)


def test_summary_reports_percentiles_and_utilisation(metered_result):
    summary = metered_result.summary()
    assert "jct percentiles: p50" in summary
    assert "slot utilisation: map mean" in summary
    assert "link utilisation: mean" in summary
    # exact slot utilisation stays in (0, 1]
    for kind in ("map", "reduce"):
        mean_u, peak_u = metered_result.slot_utilisation(kind)
        assert 0.0 < mean_u <= peak_u <= 1.0


def test_counters_reconcile_with_collector(metered_result):
    r = metered_result
    c = r.collector
    registry = r.metrics
    assert registry.get("assignments_total").value == c.scheduling_assignments
    assert registry.get("jobs_completed_total").value == len(c.job_records)
    declines = sum(
        registry.get("declines_total", kind=kind, reason=reason).value
        for (kind, reason) in c.declines_by_reason()
    )
    assert declines == c.scheduling_declines
    assert registry.get("fabric_bytes_total").value == r.bytes_over_fabric


# ----------------------------------------------------------------------
# configuration and registry validation
# ----------------------------------------------------------------------
def test_metrics_config_validation():
    assert MetricsConfig().period == 5.0
    MetricsConfig(period=math.inf)  # sampling disabled, final snapshot only
    with pytest.raises(ValueError):
        MetricsConfig(period=0.0)
    with pytest.raises(ValueError):
        MetricsConfig(period=-1.0)
    with pytest.raises((TypeError, ValueError)):
        MetricsConfig(per_node="yes")
    with pytest.raises((TypeError, ValueError)):
        MetricsConfig(jsonl=7)
    with pytest.raises((TypeError, ValueError)):
        EngineConfig(metrics="metrics.jsonl")


def test_registry_kind_and_time_guards():
    reg = MetricsRegistry()
    counter = reg.counter("events_total")
    assert isinstance(counter, Counter)
    with pytest.raises(TypeError):
        reg.gauge("events_total")
    gauge = reg.gauge("depth", queue="q0")
    assert isinstance(gauge, Gauge)
    reg.sample(1.0)
    reg.sample(1.0)  # idempotent per instant
    with pytest.raises(ValueError):
        reg.sample(0.5)
    counter.inc(3)
    with pytest.raises(ValueError):
        counter.inc(-1)
    with pytest.raises(ValueError):
        counter.set_total(1.0)
    gauge.set(-2.0)  # gauges may go anywhere finite
    with pytest.raises(ValueError):
        gauge.set(math.nan)
    reg.sample(2.0)
    assert reg.series("events_total") == [(1.0, 0.0), (2.0, 3.0)]
    assert reg.series("depth", queue="q0") == [(1.0, 0.0), (2.0, -2.0)]
