"""End-to-end job-level fairness behaviour (Fair vs FIFO ordering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation
from repro.schedulers import FairJobScheduler, FIFOJobScheduler, RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


def twin_jobs():
    return [
        JobSpec.make("01", "terasort", 24 * 64 * MB, 24, 4),
        JobSpec.make("02", "terasort", 24 * 64 * MB, 24, 4),
    ]


def run(job_scheduler, seed=6):
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=RandomScheduler(),
        jobs=twin_jobs(),
        job_scheduler=job_scheduler,
        seed=seed,
    )
    return sim.run()


class TestFairVersusFIFO:
    def test_fair_finishes_twins_together(self):
        result = run(FairJobScheduler())
        t1, t2 = result.job_completion_times
        assert abs(t1 - t2) / max(t1, t2) < 0.25

    def test_fifo_finishes_head_job_first(self):
        result = run(FIFOJobScheduler())
        recs = {r.job_id: r.finish for r in result.collector.job_records}
        assert recs["01"] <= recs["02"]

    def test_fifo_head_job_beats_its_fair_time(self):
        """FIFO lets job 01 monopolise slots, so it finishes earlier than it
        does under fair sharing."""
        fifo = run(FIFOJobScheduler())
        fair = run(FairJobScheduler())
        fifo_01 = next(
            r.completion_time for r in fifo.collector.job_records
            if r.job_id == "01"
        )
        fair_01 = next(
            r.completion_time for r in fair.collector.job_records
            if r.job_id == "01"
        )
        assert fifo_01 <= fair_01 * 1.05

    def test_both_orderings_complete_everything(self):
        for js in (FIFOJobScheduler(), FairJobScheduler()):
            assert run(js).job_completion_times.size == 2

    def test_fair_interleaves_map_starts(self):
        """Under fair sharing, both jobs run maps concurrently early on."""
        result = run(FairJobScheduler())
        early = sorted(
            (t for t in result.collector.task_records if t.kind == "map"),
            key=lambda t: t.start,
        )[:12]
        jobs_in_early = {t.job_id for t in early}
        assert jobs_in_early == {"01", "02"}
