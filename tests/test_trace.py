"""Tests for the heavy-tailed trace workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation
from repro.schedulers import CapacityJobScheduler, RandomScheduler
from repro.units import GB, MB
from repro.workload import trace_workload


class TestTraceGeneration:
    def test_basic_shape(self):
        rng = np.random.default_rng(0)
        specs = trace_workload(50, rng)
        assert len(specs) == 50
        assert len({s.job_id for s in specs}) == 50
        for s in specs:
            assert s.num_maps >= 1
            assert s.num_reduces >= 1
            assert s.input_size >= 64 * MB

    def test_arrivals_strictly_increasing(self):
        rng = np.random.default_rng(1)
        specs = trace_workload(40, rng, mean_interarrival=30.0)
        times = [s.submit_time for s in specs]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_heavy_tail(self):
        """Most jobs are small; the top decile carries most of the bytes."""
        rng = np.random.default_rng(2)
        specs = trace_workload(400, rng, median_size=2 * GB)
        sizes = np.array(sorted(s.input_size for s in specs))
        median = np.median(sizes)
        assert median < 4 * GB
        top_decile_bytes = sizes[-40:].sum()
        assert top_decile_bytes > 0.5 * sizes.sum()

    def test_max_size_clamped(self):
        rng = np.random.default_rng(3)
        specs = trace_workload(300, rng, max_size=50 * GB)
        assert max(s.input_size for s in specs) <= 50 * GB

    def test_app_mix_weights(self):
        rng = np.random.default_rng(4)
        specs = trace_workload(
            300, rng, apps=("grep", "terasort"), app_weights=[3.0, 1.0]
        )
        greps = sum(1 for s in specs if s.app.name == "grep")
        assert greps > 150  # ~75 % expected

    def test_maps_match_split_size(self):
        rng = np.random.default_rng(5)
        specs = trace_workload(20, rng, bytes_per_map=256 * MB)
        for s in specs:
            assert s.num_maps == max(1, int(np.ceil(s.input_size / (256 * MB))))

    def test_deterministic_given_rng_seed(self):
        a = trace_workload(30, np.random.default_rng(7))
        b = trace_workload(30, np.random.default_rng(7))
        assert [(s.input_size, s.submit_time) for s in a] == [
            (s.input_size, s.submit_time) for s in b
        ]

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            trace_workload(0, rng)
        with pytest.raises(ValueError):
            trace_workload(5, rng, mean_interarrival=0)
        with pytest.raises(ValueError):
            trace_workload(5, rng, tail_alpha=1.0)
        with pytest.raises(ValueError):
            trace_workload(5, rng, apps=("sort-of-sort",))
        with pytest.raises(ValueError):
            trace_workload(5, rng, apps=("grep",), app_weights=[1.0, 2.0])


class TestTraceSimulation:
    def test_multi_tenant_trace_completes(self):
        rng = np.random.default_rng(11)
        specs = trace_workload(
            15, rng, median_size=0.3 * GB, max_size=2 * GB,
            mean_interarrival=20.0,
        )
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=4),
            scheduler=RandomScheduler(),
            jobs=specs,
            job_scheduler=CapacityJobScheduler(
                {"prod": 0.7, "dev": 0.3},
                assignments={s.job_id: ("prod" if i % 2 else "dev")
                             for i, s in enumerate(specs)},
            ),
            seed=11,
        )
        result = sim.run()
        assert result.job_completion_times.size == 15
