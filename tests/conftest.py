"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

# The whole suite runs with the runtime invariant layer on, so every
# engine-level test doubles as an invariant regression test.  Must be set
# before repro is imported: Scenario's default EngineConfig is built at
# import time.
os.environ.setdefault("REPRO_CHECK_INVARIANTS", "1")

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.hdfs import NameNode
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def small_cluster(sim: Simulator) -> Cluster:
    """2 racks x 3 nodes, paper-style slots."""
    return ClusterSpec(num_racks=2, nodes_per_rack=3).build(sim)


@pytest.fixture
def namenode(small_cluster: Cluster) -> NameNode:
    return NameNode(small_cluster, replication=2, rng=np.random.default_rng(1))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
