"""Fault-injection tests: plan validation, JSON round trip, determinism.

Covers the acceptance criteria of the fault work at the *injection* layer:
plans validate and round-trip through JSON, an empty (or absent) plan
leaves a traced run byte-for-byte identical to a fault-free build, fault
runs are reproducible under a fixed seed, each fault family draws from an
independent RNG substream, and every plan family (scheduled crash, churn,
task failures, heartbeat loss, link degradation) drives the run to
completion through the recovery path.  Recovery *mechanics* (kills,
re-execution, blacklisting) are tested in ``test_recovery.py``.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec
from repro.engine import EngineConfig, Simulation
from repro.faults import (
    FaultPlan,
    HeartbeatLoss,
    LinkDegradation,
    NodeChurn,
    NodeCrash,
    TaskFailures,
    load_plan,
)
from repro.schedulers import FairScheduler
from repro.trace import jsonl_lines
from repro.trace.events import JobFail, NodeDown, NodeUp
from repro.units import MB
from repro.workload import JobSpec


def jobs(n=2, num_maps=6, app="wordcount"):
    return [
        JobSpec.make(f"{i:02d}", app, num_maps * 64 * MB, num_maps, 2)
        for i in range(1, n + 1)
    ]


def run(plan=None, seed=7, **knobs):
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=FairScheduler(),
        jobs=jobs(),
        seed=seed,
        config=EngineConfig(faults=plan, **knobs),
    )
    return sim, sim.run()


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_crash_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            NodeCrash(at=float("nan"), node="r0n0")
        with pytest.raises(ValueError):
            NodeCrash(at=-1.0, node="r0n0")
        with pytest.raises(ValueError):
            NodeCrash(at=0.0, node="")
        with pytest.raises(ValueError):
            NodeCrash(at=0.0, node="r0n0", down_for=0.0)

    def test_churn_level_must_be_open_interval(self):
        for level in (0.0, 1.0, -0.1, float("nan")):
            with pytest.raises(ValueError):
                NodeChurn(level=level)
        with pytest.raises(ValueError):
            NodeChurn(level=0.1, mean_downtime=0.0)
        with pytest.raises(ValueError):
            NodeChurn(level=0.1, nodes=())

    def test_churn_mean_uptime_from_level(self):
        churn = NodeChurn(level=0.2, mean_downtime=60.0)
        assert churn.mean_uptime == pytest.approx(240.0)

    def test_task_failures_prob_bounds(self):
        for prob in (-0.1, 1.5, float("nan")):
            with pytest.raises(ValueError):
                TaskFailures(prob=prob)
        with pytest.raises(ValueError):
            TaskFailures(prob=0.5, mean_delay=0.0)
        TaskFailures(prob=1.0)  # certainty is allowed for task failures

    def test_heartbeat_loss_below_one(self):
        with pytest.raises(ValueError):
            HeartbeatLoss(prob=1.0)  # no node could ever report
        HeartbeatLoss(prob=0.0)

    def test_degradation_target_exclusive(self):
        with pytest.raises(ValueError):
            LinkDegradation(at=0.0, duration=10.0, factor=0.5)
        with pytest.raises(ValueError):
            LinkDegradation(
                at=0.0, duration=10.0, factor=0.5, node="r0n0", rack="r0"
            )
        with pytest.raises(ValueError):
            LinkDegradation(at=0.0, duration=10.0, factor=0.0, node="r0n0")
        with pytest.raises(ValueError):
            LinkDegradation(at=0.0, duration=0.0, factor=0.5, node="r0n0")

    def test_empty_property(self):
        assert FaultPlan().empty
        assert not FaultPlan(crashes=(NodeCrash(at=1.0, node="r0n0"),)).empty
        assert not FaultPlan(heartbeat_loss=HeartbeatLoss(prob=0.1)).empty

    def test_injector_rejects_unknown_targets(self):
        plan = FaultPlan(crashes=(NodeCrash(at=1.0, node="nope"),))
        with pytest.raises(ValueError, match="unknown node"):
            Simulation(
                cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
                scheduler=FairScheduler(),
                jobs=jobs(1),
                config=EngineConfig(faults=plan),
            )


# ----------------------------------------------------------------------
# JSON round trip
# ----------------------------------------------------------------------
FULL_PLAN = FaultPlan(
    crashes=(
        NodeCrash(at=10.0, node="r0n1", down_for=60.0),
        NodeCrash(at=20.0, node="r1n2"),
    ),
    churn=NodeChurn(level=0.05, mean_downtime=90.0, start=30.0,
                    nodes=("r0n0", "r1n0")),
    task_failures=TaskFailures(prob=0.02, mean_delay=5.0),
    heartbeat_loss=HeartbeatLoss(prob=0.01),
    degradations=(
        LinkDegradation(at=40.0, duration=15.0, factor=0.25, node="r0n2"),
        LinkDegradation(at=50.0, duration=15.0, factor=0.5, rack="rack1"),
    ),
)


class TestJsonRoundTrip:
    def test_dict_round_trip(self):
        assert FaultPlan.from_dict(FULL_PLAN.to_dict()) == FULL_PLAN

    def test_json_round_trip(self):
        assert FaultPlan.from_json(FULL_PLAN.to_json()) == FULL_PLAN

    def test_load_plan_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(FULL_PLAN.to_json(), encoding="utf-8")
        assert load_plan(path) == FULL_PLAN

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"crashes": [], "typo": 1})

    def test_validation_applies_on_load(self):
        data = FULL_PLAN.to_dict()
        data["task_failures"] = {"prob": 2.0}
        with pytest.raises(ValueError):
            FaultPlan.from_dict(data)


# ----------------------------------------------------------------------
# zero-fault identity and determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_empty_plan_is_byte_identical_to_no_plan(self):
        sim_none, res_none = run(plan=None, trace=True)
        sim_empty, res_empty = run(plan=FaultPlan(), trace=True)
        assert sim_none.faults is None
        assert sim_empty.faults is None  # empty plans skip the injector
        assert jsonl_lines(res_none.trace.events) == jsonl_lines(
            res_empty.trace.events
        )

    def test_same_seed_same_faulted_trace(self):
        plan = FaultPlan(
            churn=NodeChurn(level=0.10, mean_downtime=60.0),
            task_failures=TaskFailures(prob=0.05),
        )
        _, r1 = run(plan=plan, trace=True, tracker_expiry_interval=9.0)
        _, r2 = run(plan=plan, trace=True, tracker_expiry_interval=9.0)
        assert jsonl_lines(r1.trace.events) == jsonl_lines(r2.trace.events)

    def test_different_seed_different_faults(self):
        plan = FaultPlan(churn=NodeChurn(level=0.10, mean_downtime=60.0))
        _, r1 = run(plan=plan, seed=7, trace=True, tracker_expiry_interval=9.0)
        _, r2 = run(plan=plan, seed=8, trace=True, tracker_expiry_interval=9.0)
        assert jsonl_lines(r1.trace.events) != jsonl_lines(r2.trace.events)

    def test_fault_families_draw_independent_streams(self):
        """A zero-probability family must not shift another family's draws."""
        base = FaultPlan(task_failures=TaskFailures(prob=0.05))
        extended = FaultPlan(
            task_failures=TaskFailures(prob=0.05),
            heartbeat_loss=HeartbeatLoss(prob=0.0),
        )
        _, r1 = run(plan=base, trace=True)
        _, r2 = run(plan=extended, trace=True)
        assert jsonl_lines(r1.trace.events) == jsonl_lines(r2.trace.events)


# ----------------------------------------------------------------------
# each family drives the run to completion through recovery
# ----------------------------------------------------------------------
class TestFamiliesEndToEnd:
    def test_scheduled_crash_expiry_and_rejoin(self):
        plan = FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1",
                                            down_for=20.0),))
        sim, res = run(plan=plan, trace=True, tracker_expiry_interval=9.0)
        downs = [e for e in res.trace.events if isinstance(e, NodeDown)]
        ups = [e for e in res.trace.events if isinstance(e, NodeUp)]
        assert [e.node for e in downs] == ["r0n1"]
        assert downs[0].reason == "expired"
        assert [e.node for e in ups] == ["r0n1"]
        assert ups[0].t > downs[0].t
        assert res.collector.nodes_lost == 1
        assert res.collector.nodes_rejoined == 1
        assert res.collector.job_completion_times().size == len(jobs())

    def test_permanent_crash_still_drains(self):
        plan = FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1"),))
        sim, res = run(plan=plan, trace=True, tracker_expiry_interval=9.0)
        assert res.collector.nodes_lost == 1
        assert res.collector.nodes_rejoined == 0
        assert not any(isinstance(e, NodeUp) for e in res.trace.events)
        assert res.collector.job_completion_times().size == len(jobs())

    def test_certain_task_failure_exhausts_attempts(self):
        plan = FaultPlan(task_failures=TaskFailures(prob=1.0, mean_delay=0.5))
        sim, res = run(plan=plan, trace=True, max_attempts=2)
        fails = [e for e in res.trace.events if isinstance(e, JobFail)]
        assert fails and all(e.reason == "attempts_exhausted" for e in fails)
        assert set(res.collector.failed_jobs) == {"01", "02"}
        assert sim.tracker.all_done

    def test_heartbeat_loss_causes_spurious_expiry(self):
        plan = FaultPlan(heartbeat_loss=HeartbeatLoss(prob=0.6))
        sim, res = run(plan=plan, seed=11, heartbeat_period=3.0,
                       tracker_expiry_interval=6.0)
        assert sim.faults.heartbeats_dropped > 0
        assert res.collector.nodes_lost > 0          # healthy nodes expired
        assert res.collector.nodes_rejoined > 0      # ...and came back
        assert sim.faults.crashes_injected == 0      # nothing actually died
        assert res.collector.job_completion_times().size == len(jobs())

    def test_degradation_slows_the_run(self):
        deg = LinkDegradation(at=0.0, duration=1e6, factor=0.05, node="r0n0")
        _, healthy = run(plan=None, seed=5)
        _, degraded = run(plan=FaultPlan(degradations=(deg,)), seed=5)
        assert (
            degraded.collector.job_completion_times().max()
            > healthy.collector.job_completion_times().max()
        )

    def test_degradation_applies_and_restores_on_schedule(self):
        deg = LinkDegradation(at=1.0, duration=5.0, factor=0.25, node="r0n0")
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=FairScheduler(),
            jobs=jobs(1),
            config=EngineConfig(faults=FaultPlan(degradations=(deg,))),
        )
        (link,) = sim.faults._links_for(deg)
        net = sim.cluster.network
        sim.run(until=2.0)  # inside the [1, 6) degradation window
        assert net.capacity_factor(link) == pytest.approx(0.25)
        sim.sim.run(until=10.0)
        assert net.capacity_factor(link) == pytest.approx(1.0)

    def test_rack_degradation_covers_member_links(self):
        deg = LinkDegradation(at=0.0, duration=10.0, factor=0.5, rack="rack0")
        plan = FaultPlan(degradations=(deg,))
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=FairScheduler(),
            jobs=jobs(1),
            config=EngineConfig(faults=plan),
        )
        links = sim.faults._links_for(deg)
        # three member access links plus at least one uplink toward the core
        assert len(links) >= 4
        node_deg = LinkDegradation(at=0.0, duration=10.0, factor=0.5,
                                   node="r0n0")
        assert len(sim.faults._links_for(node_deg)) == 1
