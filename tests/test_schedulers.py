"""Behavioural tests for the task schedulers (baselines + PNA)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import PNAConfig, ProbabilisticNetworkAwareScheduler
from repro.engine import EngineConfig, Simulation, TaskState
from repro.hdfs import SubsetPlacement
from repro.schedulers import (
    CouplingScheduler,
    FairJobScheduler,
    FairScheduler,
    FIFOJobScheduler,
    GreedyCostScheduler,
    RandomScheduler,
)
from repro.units import MB
from repro.workload import JobSpec, table2_batch

ALL_SCHEDULERS = [
    lambda: ProbabilisticNetworkAwareScheduler(),
    lambda: ProbabilisticNetworkAwareScheduler(PNAConfig(network_condition=True)),
    lambda: CouplingScheduler(),
    lambda: FairScheduler(),
    lambda: RandomScheduler(),
    lambda: GreedyCostScheduler(),
]


def run_small(scheduler, *, seed=3, num_jobs=3, config=None, placement=None):
    jobs = [
        JobSpec.make(f"{i:02d}", "terasort", 8 * 64 * MB, 8, 3)
        for i in range(1, num_jobs + 1)
    ]
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=scheduler,
        jobs=jobs,
        seed=seed,
        config=config,
        placement=placement,
    )
    return sim, sim.run()


class TestAllSchedulersComplete:
    @pytest.mark.parametrize("factory", ALL_SCHEDULERS,
                             ids=lambda f: f().name)
    def test_runs_to_completion(self, factory):
        sim, result = run_small(factory())
        assert result.job_completion_times.size == 3
        assert sim.tracker.all_done

    @pytest.mark.parametrize("factory", ALL_SCHEDULERS,
                             ids=lambda f: f().name)
    def test_deterministic(self, factory):
        def fp(factory):
            _, result = run_small(factory())
            return [
                (t.kind, t.index, t.node, round(t.end, 6))
                for t in result.collector.task_records
            ]

        assert fp(factory) == fp(factory)


class TestPNABehaviour:
    def test_local_task_always_preferred(self):
        """A node holding a replica of a pending map gets that map (P = 1)."""
        sim, result = run_small(ProbabilisticNetworkAwareScheduler(), num_jobs=1)
        nn = sim.tracker.namenode
        job = sim.tracker.finished_jobs[0]
        # whenever a map ran non-locally, the node must have held no replica
        # of any map that was still pending at that launch instant
        recs = sorted(
            (t for t in result.collector.task_records if t.kind == "map"),
            key=lambda t: t.start,
        )
        for rec in recs:
            if rec.locality != "node":
                pending_at_start = [
                    m for m in job.maps
                    if m.start_time >= rec.start or np.isnan(m.start_time)
                ]
                for m in pending_at_start:
                    if m.index == rec.index:
                        continue
                    # the chosen node held no replica of this pending block,
                    # otherwise PNA would have picked it with P=1
                    assert rec.node not in m.block.replicas

    def test_reduce_colocation_avoided(self):
        """Algorithm 2 line 1: never two running reducers of a job per node."""
        spec = JobSpec.make("01", "terasort", 12 * 64 * MB, 12, 8)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=ProbabilisticNetworkAwareScheduler(),
            jobs=[spec],
            seed=1,
        )
        sim.tracker.start()
        job = None
        while sim.sim.step():
            if job is None and sim.tracker.active_jobs:
                job = sim.tracker.active_jobs[0]
            if job is not None:
                nodes = [r.node.name for r in job.running_reduces()]
                assert len(nodes) == len(set(nodes))

    def test_colocation_allowed_when_disabled(self):
        spec = JobSpec.make("01", "terasort", 4 * 64 * MB, 4, 10)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=1, nodes_per_rack=3),  # 6 reduce slots
            scheduler=ProbabilisticNetworkAwareScheduler(
                PNAConfig(avoid_reduce_colocation=False)
            ),
            jobs=[spec],
            seed=1,
        )
        result = sim.run()
        assert result.job_completion_times.size == 1

    def test_p_min_zero_accepts_more_offers(self):
        def declines(p_min):
            sched = ProbabilisticNetworkAwareScheduler(PNAConfig(p_min=p_min))
            _, result = run_small(sched, placement=SubsetPlacement(0.5))
            return result.collector.scheduling_declines

        assert declines(0.0) <= declines(0.6)

    def test_invalid_p_min_rejected(self):
        with pytest.raises(ValueError):
            PNAConfig(p_min=1.0)
        with pytest.raises(ValueError):
            PNAConfig(p_min=-0.1)

    def test_netcond_name(self):
        s = ProbabilisticNetworkAwareScheduler(PNAConfig(network_condition=True))
        assert s.name == "probabilistic-netcond"


class TestFairScheduler:
    def test_map_locality_is_high_under_uniform_placement(self):
        _, result = run_small(FairScheduler())
        shares = result.collector.locality_shares("map")
        assert shares["node"] >= 0.8

    def test_skip_counts_reset_on_local_launch(self):
        sched = FairScheduler(node_delay=2, rack_delay=4)
        sim, result = run_small(sched)
        assert result.job_completion_times.size == 3

    def test_zero_delay_behaves_greedily(self):
        sched = FairScheduler(node_delay=0, rack_delay=0)
        _, result = run_small(sched)
        # no delay: every offered slot takes some task immediately
        assert result.job_completion_times.size == 3

    def test_invalid_delays_rejected(self):
        with pytest.raises(ValueError):
            FairScheduler(node_delay=-1)
        with pytest.raises(ValueError):
            FairScheduler(rack_delay=-2)

    def test_reduces_may_colocate(self):
        """Fair places reducers randomly and may stack a job's reducers."""
        spec = JobSpec.make("01", "terasort", 4 * 64 * MB, 4, 6)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=1, nodes_per_rack=3),
            scheduler=FairScheduler(),
            jobs=[spec],
            seed=1,
        )
        saw_colocation = False
        sim.tracker.start()
        job = None
        while sim.sim.step():
            if job is None and sim.tracker.active_jobs:
                job = sim.tracker.active_jobs[0]
            if job is not None:
                nodes = [r.node.name for r in job.running_reduces()]
                if len(nodes) != len(set(nodes)):
                    saw_colocation = True
        assert saw_colocation


class TestCouplingScheduler:
    def test_reduce_launch_coupled_to_map_progress(self):
        """Reducers never outnumber ceil(map_progress * n_reduces)."""
        import math

        spec = JobSpec.make("01", "wordcount", 20 * 64 * MB, 20, 6)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=CouplingScheduler(),
            jobs=[spec],
            seed=2,
        )
        sim.tracker.start()
        job = None
        while sim.sim.step():
            if job is None and sim.tracker.active_jobs:
                job = sim.tracker.active_jobs[0]
            if job is not None and not job.done:
                allowed = math.ceil(
                    job.map_progress(sim.sim.now) * job.num_reduces
                )
                # launched count checked *after* events settle; allow the
                # ceiling itself
                assert job.launched_reduce_count() <= max(allowed, 0) + 1

    def test_wait_bound_prevents_starvation(self):
        sched = CouplingScheduler(max_wait_rounds=3)
        sim, result = run_small(sched)
        assert result.job_completion_times.size == 3

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CouplingScheduler(p_rack=1.5)
        with pytest.raises(ValueError):
            CouplingScheduler(p_remote=-0.1)
        with pytest.raises(ValueError):
            CouplingScheduler(max_wait_rounds=-1)
        with pytest.raises(ValueError):
            CouplingScheduler(centrality_tolerance=0.5)


class TestGreedyScheduler:
    def test_never_declines_map_offers(self):
        sim, result = run_small(GreedyCostScheduler())
        # greedy declines only reduce-colocation offers; with plentiful maps
        # the decline count stays small compared to assignments
        assert result.collector.scheduling_assignments > 0

    def test_picks_min_cost_map(self):
        """On a node holding a replica, greedy always takes a local task."""
        _, result = run_small(GreedyCostScheduler(), num_jobs=1)
        # greedy goes for min-cost placements: under uniform placement and
        # low contention, locality should be strong
        shares = result.collector.locality_shares("map")
        assert shares["node"] >= 0.5


class TestJobLevelSchedulers:
    def test_fifo_order(self):
        jobs = []

        class J:
            def __init__(self, jid, t):
                self.submit_time = t
                self.spec = type("S", (), {"job_id": jid})()

        out = FIFOJobScheduler().order([J("b", 2.0), J("a", 1.0)], "map")
        assert [j.spec.job_id for j in out] == ["a", "b"]

    def test_fair_prefers_fewest_running(self):
        class J:
            def __init__(self, jid, running):
                self.submit_time = 0.0
                self.spec = type("S", (), {"job_id": jid})()
                self._running = running

            def running_maps(self):
                return [None] * self._running

            def running_reduces(self):
                return []

        out = FairJobScheduler().order([J("busy", 5), J("idle", 0)], "map")
        assert [j.spec.job_id for j in out] == ["idle", "busy"]

    def test_fair_weights(self):
        class J:
            def __init__(self, jid, running):
                self.submit_time = 0.0
                self.spec = type("S", (), {"job_id": jid})()
                self._running = running

            def running_maps(self):
                return [None] * self._running

            def running_reduces(self):
                return []

        sched = FairJobScheduler(weights={"heavy": 4.0})
        # heavy with 4 running has share 1.0; light with 2 has share 2.0
        out = sched.order([J("light", 2), J("heavy", 4)], "map")
        assert [j.spec.job_id for j in out] == ["heavy", "light"]

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            FairJobScheduler().order([], "shuffle")

    def test_end_to_end_with_fifo(self):
        sim, result = run_small(RandomScheduler())
        sim2 = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=RandomScheduler(),
            jobs=[
                JobSpec.make(f"{i:02d}", "terasort", 8 * 64 * MB, 8, 3)
                for i in range(1, 4)
            ],
            job_scheduler=FIFOJobScheduler(),
            seed=3,
        )
        result2 = sim2.run()
        assert result2.job_completion_times.size == 3
