"""Unit tests for ReduceTask mechanics (fetch gating, compute phase)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import EngineConfig, Simulation, TaskState
from repro.schedulers import RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


def running_state(num_maps=6, num_reduces=3, slowstart=0.0, seed=5):
    spec = JobSpec.make(
        "01", "terasort", num_maps * 64 * MB, num_maps, num_reduces
    )
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=RandomScheduler(),
        jobs=[spec],
        config=EngineConfig(slowstart=slowstart),
        seed=seed,
    )
    sim.tracker.start()
    sim.sim.run(until=1e-9)
    return sim, sim.tracker.active_jobs[0]


class TestLifecycle:
    def test_double_launch_rejected(self):
        sim, job = running_state()
        r = job.pending_reduces()[0]
        free = sim.cluster.nodes_with_free_reduce_slots()
        r.launch(free[0])
        with pytest.raises(RuntimeError):
            r.launch(free[1])

    def test_slot_acquired_and_released(self):
        sim, job = running_state()
        node = sim.cluster.nodes_with_free_reduce_slots()[0]
        before = node.free_reduce_slots
        job.pending_reduces()[0].launch(node)
        assert node.free_reduce_slots == before - 1
        sim.sim.run()
        assert node.free_reduce_slots == node.reduce_slots

    def test_compute_waits_for_all_maps(self):
        sim, job = running_state(slowstart=0.0)
        # launch a reduce immediately; it must not enter compute until the
        # last map is done
        r = job.pending_reduces()[0]
        r.launch(sim.cluster.nodes_with_free_reduce_slots()[0])
        while sim.sim.step():
            if r.computing:
                assert job.all_maps_done
            if r.done:
                break

    def test_shuffled_bytes_match_column(self):
        sim, job = running_state()
        sim.sim.run()
        for r in job.reduces:
            expected = job.I[:, r.index].sum()
            assert r.shuffled_bytes == pytest.approx(expected, rel=1e-6)

    def test_late_map_outputs_fetched(self):
        """A reduce launched before most maps still collects everything."""
        sim, job = running_state(num_maps=12, slowstart=0.0)
        # with slowstart 0, the t=0 heartbeat may already have launched r0;
        # grab a still-pending reduce and launch it by hand
        r = job.pending_reduces()[0]
        node = next(
            n for n in sim.cluster.nodes_with_free_reduce_slots()
        )
        r.launch(node)
        assert job.maps_done < 12  # launched early
        sim.sim.run()
        assert r.done
        assert r.shuffled_bytes == pytest.approx(
            job.I[:, r.index].sum(), rel=1e-6
        )

    def test_reduce_duration_includes_compute(self):
        sim, job = running_state(num_maps=4, num_reduces=1)
        sim.sim.run()
        r = job.reduces[0]
        compute_time = r.shuffled_bytes / (
            job.spec.app.reduce_rate * r.node.compute_factor
        )
        assert (r.end_time - r.start_time) >= compute_time - 1e-9


class TestSlowstartGate:
    def test_not_schedulable_before_threshold(self):
        sim, job = running_state(slowstart=0.9)
        assert not job.reduces_schedulable()

    def test_schedulable_after_threshold(self):
        sim, job = running_state(num_maps=4, slowstart=0.25)
        sim.sim.run(until=60.0)
        if job.maps_done >= 1 and job.pending_reduces():
            assert job.reduces_schedulable()

    def test_not_schedulable_when_none_pending(self):
        sim, job = running_state(num_reduces=2, slowstart=0.0)
        free = iter(sim.cluster.nodes_with_free_reduce_slots())
        for r in job.pending_reduces():
            r.launch(next(free))
        assert not job.reduces_schedulable()
