"""Configuration propagation through the Simulation front-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import EngineConfig, Simulation
from repro.hdfs import RandomPlacement
from repro.schedulers import RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


def job():
    return [JobSpec.make("01", "grep", 6 * 64 * MB, 6, 2)]


class TestConfigPropagation:
    def test_replication_reaches_namenode(self):
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=RandomScheduler(),
            jobs=job(),
            config=EngineConfig(replication=3),
        )
        sim.run()
        f = sim.namenode.files["input-grep-01"]
        assert all(b.replication == 3 for b in f.blocks)

    def test_placement_policy_used(self):
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=RandomScheduler(),
            jobs=job(),
            placement=RandomPlacement(),
        )
        assert isinstance(sim.namenode.policy, RandomPlacement)
        sim.run()

    def test_fetch_pool_size_reaches_reducers(self):
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=RandomScheduler(),
            jobs=job(),
            config=EngineConfig(max_parallel_fetches=2),
        )
        sim.run()
        jobj = sim.tracker.finished_jobs[0]
        assert jobj.reduces[0]._fetch.max_parallel == 2

    def test_heartbeat_period_reaches_tracker(self):
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=RandomScheduler(),
            jobs=job(),
            config=EngineConfig(heartbeat_period=7.0),
        )
        assert sim.tracker.config.heartbeat_period == 7.0

    def test_default_config_is_hadoop_121(self):
        cfg = EngineConfig()
        assert cfg.heartbeat_period == 3.0
        assert cfg.assign_multiple is False
        assert cfg.slowstart == 0.05
        assert cfg.max_parallel_fetches == 5
        assert cfg.replication == 2
        assert cfg.speculative is False

    def test_seed_streams_independent(self):
        """Changing the scheduler's draws must not change replica layout:
        two different schedulers under one seed see identical block maps."""
        from repro.core import ProbabilisticNetworkAwareScheduler

        def layout(scheduler):
            sim = Simulation(
                cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
                scheduler=scheduler,
                jobs=job(),
                seed=77,
            )
            sim.run()
            f = sim.namenode.files["input-grep-01"]
            return [b.replicas for b in f.blocks]

        assert layout(RandomScheduler()) == layout(
            ProbabilisticNetworkAwareScheduler()
        )


class TestConfigValidation:
    """EngineConfig rejects NaN, infinite and out-of-range knobs eagerly."""

    @pytest.mark.parametrize("knob,value", [
        ("heartbeat_period", 0.0),
        ("heartbeat_period", -1.0),
        ("heartbeat_period", float("nan")),
        ("heartbeat_period", float("inf")),
        ("slowstart", -0.1),
        ("slowstart", 1.5),
        ("slowstart", float("nan")),
        ("max_parallel_fetches", 0),
        ("max_parallel_fetches", 2.5),
        ("replication", 0),
        ("speculative_min_age", float("nan")),
        ("speculative_min_age", -1.0),
        ("speculative_progress_factor", 0.0),
        ("speculative_progress_factor", float("nan")),
        ("speculative_cap", 0.0),
        ("speculative_cap", 1.5),
        ("tracker_expiry_interval", 0.0),
        ("tracker_expiry_interval", float("nan")),
        ("max_attempts", 0),
        ("max_attempts", True),
        ("max_task_failures_per_tracker", 0),
        ("horizon", 0.0),
        ("horizon", float("nan")),
        ("faults", "plan.json"),
    ])
    def test_bad_knob_rejected(self, knob, value):
        with pytest.raises(ValueError, match=knob):
            EngineConfig(**{knob: value})

    def test_nan_does_not_slip_through_comparisons(self):
        # NaN <= 0 is False, so a naive range check would accept it
        with pytest.raises(ValueError):
            EngineConfig(slowstart=float("nan"))

    def test_infinite_horizon_allowed(self):
        assert EngineConfig(horizon=float("inf")).horizon == float("inf")

    def test_fault_knobs_have_hadoop_defaults(self):
        cfg = EngineConfig()
        assert cfg.tracker_expiry_interval == 30.0
        assert cfg.max_attempts == 4
        assert cfg.max_task_failures_per_tracker == 4
        assert cfg.faults is None
