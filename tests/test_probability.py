"""Unit tests for the acceptance-probability models (Formulae 4-5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExponentialModel, HyperbolicModel, LinearModel

ALL_MODELS = [ExponentialModel(), HyperbolicModel(), LinearModel()]


class TestSharedContract:
    """Behaviour every Formula-4 family member must satisfy."""

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_zero_cost_always_accepts(self, model):
        assert model.probability(5.0, 0.0) == 1.0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_zero_over_zero_accepts(self, model):
        # no data anywhere: placement is free everywhere
        assert model.probability(0.0, 0.0) == 1.0

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_zero_average_positive_cost_rejects(self, model):
        assert model.probability(0.0, 10.0) == pytest.approx(0.0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_probability_in_unit_interval(self, model):
        c_ave = np.linspace(0, 100, 31)
        cost = np.linspace(0.1, 100, 31)
        p = model.probability(c_ave, cost)
        assert np.all(p >= 0) and np.all(p <= 1)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_monotone_decreasing_in_cost(self, model):
        costs = np.linspace(0.5, 50, 40)
        p = model.probability(10.0, costs)
        assert np.all(np.diff(p) <= 1e-12)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_monotone_increasing_in_average(self, model):
        c_aves = np.linspace(0.0, 50, 40)
        p = model.probability(c_aves, 10.0)
        assert np.all(np.diff(p) >= -1e-12)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_negative_cost_rejected(self, model):
        with pytest.raises(ValueError):
            model.probability(1.0, -1.0)
        with pytest.raises(ValueError):
            model.probability(-1.0, 1.0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_vectorised_matches_scalar(self, model):
        c_ave = np.array([1.0, 2.0, 3.0])
        cost = np.array([3.0, 2.0, 1.0])
        vec = model.probability(c_ave, cost)
        for i in range(3):
            assert vec[i] == pytest.approx(
                float(model.probability(float(c_ave[i]), float(cost[i])))
            )


class TestExponential:
    """The paper's exact Formula (4)."""

    def test_formula_value(self):
        m = ExponentialModel()
        # P = 1 - exp(-c_ave / c)
        assert m.probability(4.0, 2.0) == pytest.approx(1 - np.exp(-2.0))
        assert m.probability(2.0, 2.0) == pytest.approx(1 - np.exp(-1.0))

    def test_equal_costs_give_inverse_e(self):
        # ratio 1 -> P = 1 - 1/e ~ 0.632, comfortably above the paper's
        # P_min = 0.4, so an "average" slot is still usually accepted
        p = float(ExponentialModel().probability(7.0, 7.0))
        assert p == pytest.approx(0.6321, abs=1e-4)
        assert p > 0.4

    def test_threshold_cost_bound(self):
        # Section II-C: P >= P_min  <=>  C <= C_ave / (-ln(1 - P_min))
        m = ExponentialModel()
        p_min = 0.4
        c_ave = 10.0
        c_bound = c_ave / (-np.log(1 - p_min))
        assert float(m.probability(c_ave, c_bound)) == pytest.approx(p_min)
        assert float(m.probability(c_ave, c_bound * 0.99)) > p_min
        assert float(m.probability(c_ave, c_bound * 1.01)) < p_min

    def test_extreme_ratio_saturates(self):
        m = ExponentialModel()
        assert float(m.probability(1e12, 1.0)) == 1.0
        assert float(m.probability(1.0, 1e12)) == pytest.approx(0.0, abs=1e-9)


class TestHyperbolic:
    def test_formula_value(self):
        m = HyperbolicModel()
        assert float(m.probability(2.0, 2.0)) == pytest.approx(0.5)
        assert float(m.probability(4.0, 2.0)) == pytest.approx(2 / 3)

    def test_uniformly_more_conservative_than_exponential(self):
        # r/(1+r) <= 1-exp(-r) for every r >= 0, so the hyperbolic model
        # accepts strictly less often at any positive cost
        ratios = np.linspace(0.01, 20, 50)
        h = HyperbolicModel().probability(ratios, np.ones_like(ratios))
        e = ExponentialModel().probability(ratios, np.ones_like(ratios))
        assert np.all(h < e)


class TestLinear:
    def test_formula_value(self):
        m = LinearModel(beta=0.5)
        assert float(m.probability(2.0, 2.0)) == pytest.approx(0.5)
        assert float(m.probability(8.0, 2.0)) == 1.0

    def test_beta_scales_ramp(self):
        lo = float(LinearModel(beta=0.25).probability(2.0, 2.0))
        hi = float(LinearModel(beta=0.75).probability(2.0, 2.0))
        assert lo == pytest.approx(0.25)
        assert hi == pytest.approx(0.75)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            LinearModel(beta=0.0)
