"""Tests for the ``repro.analysis.check`` whole-program analyzer.

Mirrors ``test_lint.py``'s structure: each pass gets seeded-defect fixtures
(the rule fires on the hazard it documents, with a stable rule id) and
clean counterparts, plus baseline-ratchet, report-format and CLI coverage.
Fixtures go through the in-memory ``check_sources`` entry point as
``(display_path, scope_path, source)`` triples.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.check import (
    CheckConfig,
    Finding,
    RULES,
    apply_baseline,
    check_paths,
    check_sources,
    fingerprint_counts,
    load_baseline,
    write_baseline,
)
from repro.analysis.check.runner import main as check_main

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"


def run_check(source, name="mod.py", config=None):
    return check_sources([(name, Path(name), source)], config)


def run_check_many(named_sources, config=None):
    return check_sources(
        [(name, Path(name), src) for name, src in named_sources], config
    )


def rules(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# the four seeded-defect fixtures of the acceptance checklist: each is
# exactly one finding with a stable rule id.
# ----------------------------------------------------------------------
MISSED_BUMP = (
    "class Net:\n"
    "    def __init__(self):\n"
    "        self.epoch = 0\n"
    "        self._link_flows = {}\n"
    "\n"
    '    @cached_on("epoch", inputs=("Net._link_flows",),\n'
    '               reference="_rates_reference")\n'
    "    def rates(self):\n"
    "        return dict(self._link_flows)\n"
    "\n"
    "    def _rates_reference(self):\n"
    "        return dict(self._link_flows)\n"
    "\n"
    "    def good(self, k, v):\n"
    "        self._link_flows[k] = v\n"
    "        self.epoch += 1\n"
    "\n"
    "    def bad(self, k, v):\n"
    "        self._link_flows[k] = v\n"
)

AMBIENT_RNG = (
    "import numpy as np\n"
    "\n"
    "def make_generator():\n"
    "    return np.random.default_rng()\n"
)

DUPLICATE_STREAM = (
    "RNG_STREAMS = {\n"
    '    0: "placement",\n'
    '    1: "scheduler",\n'
    '    1: "faults",\n'
    "}\n"
)

UNUSED_REASON = (
    'GOOD = "good_reason"\n'
    'STALE = "stale_reason"\n'
    "DECLINE_REASONS = (GOOD, STALE)\n"
    "\n"
    "def decline(ctx):\n"
    '    ctx.note_decline("good_reason")\n'
)


class TestSeededDefects:
    def test_missed_epoch_bump_exactly_one_finding(self):
        fs = run_check(MISSED_BUMP)
        assert [f.rule for f in fs] == ["cache-missing-bump"]
        assert "Net._link_flows" in fs[0].message
        assert "Net.bad" in fs[0].message
        # the finding anchors on the unguarded write, not the declaration
        assert fs[0].line == MISSED_BUMP.splitlines().index(
            "        self._link_flows[k] = v"
        ) + 1 or fs[0].line > 15

    def test_ambient_default_rng_exactly_one_finding(self):
        fs = run_check(AMBIENT_RNG)
        assert [f.rule for f in fs] == ["rng-ambient"]
        assert "default_rng()" in fs[0].message

    def test_duplicate_stream_index_exactly_one_finding(self):
        fs = run_check(DUPLICATE_STREAM)
        assert [f.rule for f in fs] == ["rng-duplicate-stream"]
        assert "declared twice" in fs[0].message

    def test_unused_decline_reason_exactly_one_finding(self):
        fs = run_check(UNUSED_REASON)
        assert [f.rule for f in fs] == ["vocab-unused"]
        assert "STALE" in fs[0].message
        assert fs[0].line == 2  # the constant's definition line


# ----------------------------------------------------------------------
# cache-coherence
# ----------------------------------------------------------------------
class TestCoherence:
    def test_bump_on_every_path_passes(self):
        src = MISSED_BUMP.replace(
            "    def bad(self, k, v):\n        self._link_flows[k] = v\n",
            "",
        )
        assert run_check(src) == []

    def test_conditional_early_return_before_bump_flagged(self):
        src = MISSED_BUMP.replace(
            "    def bad(self, k, v):\n        self._link_flows[k] = v\n",
            "    def bad(self, k, v):\n"
            "        self._link_flows[k] = v\n"
            "        if not v:\n"
            "            return\n"
            "        self.epoch += 1\n",
        )
        fs = run_check(src)
        assert [f.rule for f in fs] == ["cache-missing-bump"]

    def test_bump_in_both_branches_passes(self):
        src = MISSED_BUMP.replace(
            "    def bad(self, k, v):\n        self._link_flows[k] = v\n",
            "    def bad(self, k, v):\n"
            "        self._link_flows[k] = v\n"
            "        if v:\n"
            "            self.epoch += 1\n"
            "        else:\n"
            "            self.epoch = self.epoch + 1\n",
        )
        assert run_check(src) == []

    def test_bump_in_one_branch_only_flagged(self):
        src = MISSED_BUMP.replace(
            "    def bad(self, k, v):\n        self._link_flows[k] = v\n",
            "    def bad(self, k, v):\n"
            "        self._link_flows[k] = v\n"
            "        if v:\n"
            "            self.epoch += 1\n",
        )
        assert rules(run_check(src)) == ["cache-missing-bump"]

    def test_bump_inside_loop_is_not_a_guarantee(self):
        src = MISSED_BUMP.replace(
            "    def bad(self, k, v):\n        self._link_flows[k] = v\n",
            "    def bad(self, k, v):\n"
            "        self._link_flows[k] = v\n"
            "        for _ in v:\n"
            "            self.epoch += 1\n",
        )
        assert rules(run_check(src)) == ["cache-missing-bump"]

    def test_invalidator_call_counts_as_guarantee(self):
        src = (
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._items = []\n"
            "\n"
            '    @cached_on(invalidator="_invalidate",\n'
            '               inputs=("Box._items",))\n'
            "    def view(self):\n"
            "        return tuple(self._items)\n"
            "\n"
            "    def _invalidate(self):\n"
            "        pass\n"
            "\n"
            "    def add(self, item):\n"
            "        self._items.append(item)\n"
            "        self._invalidate()\n"
        )
        assert run_check(src) == []

    def test_transitive_helper_bump_counts(self):
        src = MISSED_BUMP.replace(
            "    def bad(self, k, v):\n        self._link_flows[k] = v\n",
            "    def bad(self, k, v):\n"
            "        self._link_flows[k] = v\n"
            "        self._finish()\n"
            "\n"
            "    def _finish(self):\n"
            "        self.epoch += 1\n",
        )
        assert run_check(src) == []

    def test_mutator_method_call_is_a_write(self):
        src = MISSED_BUMP.replace(
            "    def bad(self, k, v):\n        self._link_flows[k] = v\n",
            "    def wipe(self):\n        self._link_flows.clear()\n",
        )
        fs = run_check(src)
        assert [f.rule for f in fs] == ["cache-missing-bump"]
        assert "Net.wipe" in fs[0].message

    def test_cache_deps_maintainers_enforced(self):
        src = (
            "CACHE_DEPS = {\n"
            '    "Mat._rows": {\n'
            '        "inputs": ("Mat._rows",),\n'
            '        "maintainers": ("grow",),\n'
            "    },\n"
            "}\n"
            "\n"
            "class Mat:\n"
            "    def __init__(self):\n"
            "        self._rows = []\n"
            "\n"
            "    def grow(self):\n"
            "        self._rows.append(0)\n"
            "\n"
            "    def rogue(self):\n"
            "        self._rows.append(1)\n"
        )
        fs = run_check(src)
        assert [f.rule for f in fs] == ["cache-missing-bump"]
        assert "Mat.rogue" in fs[0].message
        assert "maintained by grow" in fs[0].message

    def test_watched_input_needs_no_bump(self):
        src = (
            '_WATCHED = frozenset({"alive"})\n'
            "\n"
            "class Node:\n"
            "    def __init__(self):\n"
            "        self.alive = True\n"
            "\n"
            "    def __setattr__(self, name, value):\n"
            "        if name in _WATCHED:\n"
            "            pass\n"
            "        object.__setattr__(self, name, value)\n"
            "\n"
            "class View:\n"
            '    @cached_on("epoch", inputs=("Node.alive",),\n'
            '               watcher="Node.__setattr__")\n'
            "    def free(self):\n"
            "        return 0\n"
            "\n"
            "def kill(node):\n"
            "    node.alive = False\n"
        )
        assert run_check(src) == []

    def test_unwatched_mutated_input_flagged(self):
        src = (
            '_WATCHED = frozenset({"alive"})\n'
            "\n"
            "class Node:\n"
            "    def __init__(self):\n"
            "        self.alive = True\n"
            "        self.load = 0\n"
            "\n"
            "    def __setattr__(self, name, value):\n"
            "        if name in _WATCHED:\n"
            "            pass\n"
            "        object.__setattr__(self, name, value)\n"
            "\n"
            "    def overload(self):\n"
            "        self.load = 1\n"
            "\n"
            "class View:\n"
            '    @cached_on("epoch", inputs=("Node.load",),\n'
            '               watcher="Node.__setattr__")\n'
            "    def free(self):\n"
            "        return 0\n"
        )
        fs = run_check(src)
        assert rules(fs) == ["cache-unwatched-input"]
        assert "Node.load" in fs[0].message

    def test_unresolved_reference_flagged(self):
        src = (
            "class C:\n"
            '    @cached_on("v", reference="_nope")\n'
            "    def m(self):\n"
            "        return 0\n"
        )
        fs = run_check(src)
        assert rules(fs) == ["cache-decl-unresolved"]
        assert "_nope" in fs[0].message

    def test_unresolved_input_class_flagged(self):
        src = (
            "class C:\n"
            '    @cached_on("v", inputs=("Ghost.attr",))\n'
            "    def m(self):\n"
            "        return 0\n"
        )
        fs = run_check(src)
        assert rules(fs) == ["cache-decl-unresolved"]
        assert "Ghost" in fs[0].message

    def test_init_writes_are_exempt(self):
        src = MISSED_BUMP.replace(
            "    def bad(self, k, v):\n        self._link_flows[k] = v\n", ""
        ).replace(
            "        self._link_flows = {}\n",
            "        self._link_flows = {}\n        self._link_flows[0] = 1\n",
        )
        assert run_check(src) == []

    def test_live_declarations_resolve(self):
        """Every @cached_on / CACHE_DEPS declaration in src resolves."""
        from repro.analysis.check.coherence import collect_declarations
        from repro.analysis.check.project import Project

        project = Project.from_paths([SRC])
        decls = collect_declarations(project)
        assert len(decls) >= 10  # network, cluster, job, cost + CACHE_DEPS
        qualnames = {d.qualname for d in decls}
        assert "FlowNetwork.rate_matrix" in qualnames
        assert "FlowNetwork._refill" in qualnames
        assert "Job.pending_maps" in qualnames


# ----------------------------------------------------------------------
# RNG provenance
# ----------------------------------------------------------------------
class TestProvenance:
    def test_injected_seed_passes(self):
        src = (
            "import numpy as np\n"
            "def build(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert run_check(src) == []

    def test_spawned_substream_passes(self):
        src = (
            "import numpy as np\n"
            'RNG_STREAMS = {0: "a", 1: "b"}\n'
            "def build(seed):\n"
            "    ss = np.random.SeedSequence(seed)\n"
            "    a_ss, b_ss = ss.spawn(len(RNG_STREAMS))\n"
            "    return np.random.default_rng(a_ss)\n"
        )
        assert run_check(src) == []

    def test_constant_seed_flagged(self):
        fs = run_check(
            "import numpy as np\nrng = np.random.default_rng(42)\n"
        )
        assert rules(fs) == ["rng-constant-seed"]

    def test_unprovenanced_seed_flagged(self):
        src = (
            "import numpy as np\n"
            "def build(counter):\n"
            "    return np.random.default_rng(counter)\n"
        )
        fs = run_check(src)
        assert rules(fs) == ["rng-unprovenanced"]

    def test_global_singleton_draw_flagged(self):
        fs = run_check("import numpy as np\nx = np.random.rand(3)\n")
        assert rules(fs) == ["rng-ambient"]

    def test_ambient_seedsequence_flagged(self):
        fs = run_check(
            "from numpy.random import SeedSequence\nss = SeedSequence()\n"
        )
        assert rules(fs) == ["rng-ambient"]

    def test_spawn_count_mismatch_flagged(self):
        src = (
            "import numpy as np\n"
            "def fan_out(seed):\n"
            "    ss = np.random.SeedSequence(seed)\n"
            "    a, b, c = ss.spawn(2)\n"
            "    return a\n"
        )
        fs = run_check(src)
        assert rules(fs) == ["rng-stream-count"]
        assert "2" in fs[0].message and "3" in fs[0].message

    def test_spawn_len_registry_cross_checked(self):
        src = (
            "import numpy as np\n"
            'RNG_STREAMS = {0: "a", 1: "b"}\n'
            "def fan_out(seed):\n"
            "    ss = np.random.SeedSequence(seed)\n"
            "    a, b, c = ss.spawn(len(RNG_STREAMS))\n"
            "    return a\n"
        )
        assert rules(run_check(src)) == ["rng-stream-count"]

    def test_duplicate_purpose_flagged(self):
        fs = run_check('RNG_STREAMS = {0: "faults", 1: "faults"}\n')
        assert rules(fs) == ["rng-duplicate-stream"]
        assert "two indices" in fs[0].message


# ----------------------------------------------------------------------
# closed vocabularies
# ----------------------------------------------------------------------
VOCAB_DEFS = (
    'BELOW = "below_pmin"\n'
    'DEAD = "node_dead"\n'
    "DECLINE_REASONS = (BELOW, DEAD)\n"
)


class TestVocab:
    def test_unknown_member_at_call_site_flagged(self):
        src = VOCAB_DEFS + (
            "def f(ctx):\n"
            '    ctx.note_decline("below_pmin")\n'
            '    ctx.note_decline("node_dead")\n'
            '    ctx.note_decline("below_pmim")\n'
        )
        fs = run_check(src)
        assert rules(fs) == ["vocab-unknown"]
        assert "below_pmim" in fs[0].message

    def test_all_members_used_is_clean(self):
        src = VOCAB_DEFS + (
            "def f(ctx):\n"
            '    ctx.note_decline("below_pmin")\n'
            '    ctx.note_decline("node_dead")\n'
        )
        assert run_check(src) == []

    def test_constant_name_load_marks_used(self):
        src = VOCAB_DEFS + (
            "def f(ctx):\n"
            "    ctx.note_decline(BELOW)\n"
            "    ctx.note_decline(DEAD)\n"
        )
        assert run_check(src) == []

    def test_cross_module_import_marks_used(self):
        fs = run_check_many(
            [
                ("reasons.py", VOCAB_DEFS),
                (
                    "use.py",
                    "from reasons import BELOW, DEAD\n"
                    "def f(ctx):\n"
                    "    ctx.note_decline(BELOW)\n"
                    "    ctx.note_decline(DEAD)\n",
                ),
            ]
        )
        assert fs == []

    def test_event_type_vocabulary_both_directions(self):
        src = (
            "class TraceEvent:\n"
            '    type = "event"\n'
            "\n"
            "class MapDone(TraceEvent):\n"
            '    type = "map_done"\n'
            "\n"
            "class Stale(TraceEvent):\n"
            '    type = "stale_thing"\n'
            "\n"
            "def f(events):\n"
            "    done = [e for e in events if e.type == \"map_done\"]\n"
            "    ghosts = [e for e in events if e.type == \"ghost\"]\n"
            "    return done, ghosts\n"
        )
        fs = run_check(src)
        assert rules(fs) == ["vocab-unknown", "vocab-unused"]
        unknown = [f for f in fs if f.rule == "vocab-unknown"]
        unused = [f for f in fs if f.rule == "vocab-unused"]
        assert "ghost" in unknown[0].message
        assert "Stale" in unused[0].message

    def test_event_instantiation_marks_tag_used(self):
        src = (
            "class TraceEvent:\n"
            '    type = "event"\n'
            "\n"
            "class MapDone(TraceEvent):\n"
            '    type = "map_done"\n'
            "\n"
            "def f():\n"
            "    return MapDone()\n"
        )
        assert run_check(src) == []

    def test_journal_kind_comparison_marks_used_but_never_unknown(self):
        # .kind is also the map/reduce discriminator on task records, so an
        # unknown literal in a .kind comparison must not be reported
        src = (
            'MAP_DONE = "map_done"\n'
            "JOURNAL_KINDS = (MAP_DONE,)\n"
            "def replay(entries):\n"
            '    a = [e for e in entries if e.kind == "map_done"]\n'
            '    b = [e for e in entries if e.kind == "map"]\n'
            "    return a, b\n"
        )
        assert run_check(src) == []

    def test_live_vocabularies_discovered(self):
        from repro.analysis.check.project import Project
        from repro.analysis.check.vocab import _collect_vocabularies

        project = Project.from_paths([SRC])
        vocabs = _collect_vocabularies(project)
        assert "DECLINE_REASONS" in vocabs
        assert "JOURNAL_KINDS" in vocabs
        assert "EVENT_TYPES" in vocabs
        assert len(vocabs["EVENT_TYPES"].members) >= 15


# ----------------------------------------------------------------------
# suppression, filtering, parse errors
# ----------------------------------------------------------------------
class TestFiltering:
    def test_marker_waives_check_rule(self):
        src = AMBIENT_RNG.replace(
            "np.random.default_rng()",
            "np.random.default_rng()  # repro: lint-ok[rng-ambient]",
        )
        assert run_check(src) == []

    def test_ignore_drops_rule(self):
        config = CheckConfig(ignore=("rng-ambient",))
        assert run_check(AMBIENT_RNG, config=config) == []

    def test_select_restricts_rules(self):
        config = CheckConfig(select=("vocab-unused",))
        both = MISSED_BUMP + "\n" + UNUSED_REASON
        assert rules(run_check(both, config=config)) == ["vocab-unused"]

    def test_unknown_waiver_flagged(self):
        src = "x = 1  # repro: lint-ok[rng-ambientt]\n"
        fs = run_check(src)
        assert rules(fs) == ["unknown-waiver"]
        assert "rng-ambientt" in fs[0].message

    def test_lint_rule_names_are_known_waivers(self):
        assert run_check("x = 1  # repro: lint-ok[magic-unit]\n") == []

    def test_marker_mentioned_in_docstring_not_validated(self):
        src = '"""Silence with # repro: lint-ok[not-a-rule]."""\n'
        assert run_check(src) == []

    def test_syntax_error_reported_as_parse_error(self):
        fs = run_check("def broken(:\n")
        assert [f.rule for f in fs] == ["parse-error"]

    def test_parse_error_survives_select(self):
        config = CheckConfig(select=("vocab-unused",))
        fs = run_check("def broken(:\n", config=config)
        assert [f.rule for f in fs] == ["parse-error"]


# ----------------------------------------------------------------------
# baseline ratchet
# ----------------------------------------------------------------------
class TestBaseline:
    def _findings(self):
        return run_check(AMBIENT_RNG, name="fix.py")

    def test_fingerprint_is_line_independent(self):
        a = Finding(path="p.py", line=3, col=1, rule="r", message="m")
        b = Finding(path="p.py", line=99, col=5, rule="r", message="m")
        assert a.fingerprint() == b.fingerprint() == "r|p.py|m"

    def test_roundtrip_and_apply(self, tmp_path):
        findings = self._findings()
        path = tmp_path / "BASE.json"
        write_baseline(path, findings)
        recorded = load_baseline(path)
        assert recorded == fingerprint_counts(findings)
        new, stale = apply_baseline(findings, recorded)
        assert new == [] and stale == []

    def test_new_finding_not_absorbed(self, tmp_path):
        path = tmp_path / "BASE.json"
        write_baseline(path, [])
        new, stale = apply_baseline(self._findings(), load_baseline(path))
        assert len(new) == 1 and stale == []

    def test_stale_fingerprint_reported(self, tmp_path):
        path = tmp_path / "BASE.json"
        write_baseline(path, self._findings())
        new, stale = apply_baseline([], load_baseline(path))
        assert new == [] and len(stale) == 1

    def test_count_budget_per_fingerprint(self):
        f = self._findings()[0]
        twice = [f, Finding(f.path, f.line + 7, f.col, f.rule, f.message)]
        baseline = fingerprint_counts([f])
        new, stale = apply_baseline(twice, baseline)
        assert len(new) == 1  # one absorbed, the second is new

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "BASE.json"
        path.write_text('{"findings": []}', encoding="utf-8")
        with pytest.raises(ValueError):
            load_baseline(path)


# ----------------------------------------------------------------------
# report formats
# ----------------------------------------------------------------------
class TestReports:
    def test_text_format(self):
        f = run_check(AMBIENT_RNG, name="fix.py")[0]
        assert f.format().startswith("fix.py:4:")
        assert "[rng-ambient]" in f.format()

    def test_json_document(self):
        from repro.analysis.check.report import format_json

        doc = json.loads(format_json(run_check(AMBIENT_RNG, name="fix.py")))
        assert doc["tool"] == "repro-check"
        assert doc["summary"]["total"] == 1
        assert doc["summary"]["by_rule"] == {"rng-ambient": 1}
        assert doc["findings"][0]["rule"] == "rng-ambient"

    def test_sarif_document(self):
        from repro.analysis.check.report import format_sarif

        doc = json.loads(format_sarif(run_check(AMBIENT_RNG, name="fix.py")))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(RULES)
        result = run["results"][0]
        assert result["ruleId"] == "rng-ambient"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "fix.py"
        assert "partialFingerprints" in result


# ----------------------------------------------------------------------
# whole tree + CLI
# ----------------------------------------------------------------------
class TestWholeTree:
    def test_src_tree_is_clean(self):
        assert check_paths([SRC]) == []

    def test_committed_baseline_is_current(self):
        recorded = load_baseline(REPO / "CHECK_BASELINE.json")
        new, stale = apply_baseline(check_paths([SRC]), recorded)
        assert new == [] and stale == []

    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert check_main(["--no-baseline", str(SRC)]) == 0

    def test_cli_exit_one_on_finding(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(AMBIENT_RNG, encoding="utf-8")
        assert check_main(["--no-baseline", str(tmp_path)]) == 1
        assert "rng-ambient" in capsys.readouterr().out

    def test_cli_exit_two_on_parse_error(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def broken(:\n", encoding="utf-8")
        assert check_main(["--no-baseline", str(tmp_path)]) == 2

    def test_cli_exit_two_on_missing_path(self, capsys):
        assert check_main([str(SRC / "no-such-dir")]) == 2

    def test_cli_rejects_unknown_rule(self, capsys):
        assert check_main(["--select", "bogus", str(SRC)]) == 2

    def test_cli_list_rules(self, capsys):
        assert check_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_cli_baseline_ratchet_cycle(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.check]\n", encoding="utf-8"
        )
        (tmp_path / "mod.py").write_text(AMBIENT_RNG, encoding="utf-8")
        target = str(tmp_path / "mod.py")
        # no baseline yet: the finding is new -> exit 1
        assert check_main([target]) == 1
        capsys.readouterr()
        # record it, then the same tree is green
        assert check_main(["--update-baseline", target]) == 0
        assert (tmp_path / "CHECK_BASELINE.json").is_file()
        assert check_main([target]) == 0
        capsys.readouterr()
        # fixing the finding makes the baseline stale -> exit 1 again
        (tmp_path / "mod.py").write_text(
            AMBIENT_RNG.replace("default_rng()", "default_rng(seed)")
            .replace("def make_generator():", "def make_generator(seed):"),
            encoding="utf-8",
        )
        assert check_main([target]) == 1
        err = capsys.readouterr().err
        assert "no longer occur" in err
        assert check_main(["--update-baseline", target]) == 0
        assert check_main([target]) == 0

    def test_cli_json_format_emits_all_findings(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(AMBIENT_RNG, encoding="utf-8")
        check_main(["--no-baseline", "--format", "json", str(tmp_path)])
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["total"] == 1

    def test_python_dash_m_entry_point(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.check", str(SRC)],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
