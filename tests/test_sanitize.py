"""Runtime cache sanitizer (``REPRO_SANITIZE=cache``) coverage.

The ``@cached_on`` declarations that ``repro check`` verifies statically
double as runtime contracts: with the sanitizer on, every declared cache
shadow-executes its naive ``reference`` recompute on a deterministic sample
of cache hits and asserts byte-equality.  The end-to-end test drives a
network-condition PNA run — the only scheduler mode that exercises
``FlowNetwork.rate_matrix``, ``Cluster.inverse_rate_matrix`` and
``JobCostModel._distance_done_matrix`` — and demands at least one
shadow-verified hit per declared cache layer.
"""

from __future__ import annotations

import pytest

from repro import ClusterSpec, EngineConfig, Simulation, table2_batch
from repro.coherence import (
    DECLARATIONS,
    CacheCoherenceError,
    cached_on,
    reset_sanitizer_stats,
    sanitize_cache_active,
    sanitizer_report,
    set_sanitize_cache,
)
from repro.core import PNAConfig, ProbabilisticNetworkAwareScheduler


@pytest.fixture
def sanitizer():
    """Turn the cache sanitizer on for one test, with zeroed counters."""
    was = sanitize_cache_active()
    set_sanitize_cache(True)
    reset_sanitizer_stats()
    yield
    set_sanitize_cache(was)
    reset_sanitizer_stats()


# ---------------------------------------------------------------------------
# end-to-end: every declared layer shadow-verifies during a netcond run
# ---------------------------------------------------------------------------
def test_netcond_run_shadow_verifies_every_layer(sanitizer):
    # grep's reduce-light shape leaves reduces pending after the last map
    # finishes, which is the one phase where the per-offer reduce bundle
    # is cacheable — wordcount here would leave that layer unexercised
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=ProbabilisticNetworkAwareScheduler(
            PNAConfig(network_condition=True)
        ),
        jobs=table2_batch("grep", scale=0.05)[:4],
        config=EngineConfig(),
        seed=123,
    )
    result = sim.run()
    assert result.sim_time > 0 and result.mean_jct > 0

    report = sanitizer_report()
    # the PR 4 cache layers are all registered...
    for layer in (
        "FlowNetwork.rate_matrix",
        "Cluster.inverse_rate_matrix",
        "Cluster.free_map_slot_view",
        "Cluster.free_reduce_slot_view",
        "Job.pending_maps",
        "Job.pending_reduces",
        "JobCostModel._distance_done_matrix",
        "JobCostModel.map_offer_costs",
        "JobCostModel.reduce_offer_costs",
    ):
        assert layer in report, f"{layer} is not declared via @cached_on"
    # ... and every registered production layer (everything except this
    # module's own _Counter fixture) was hit and shadow-verified at least once
    for name, counters in report.items():
        if name.startswith("_Counter."):
            continue
        assert counters["hits"] >= 1, f"{name}: no cache hit in netcond run"
        assert counters["verified"] >= 1, f"{name}: never shadow-verified"


def test_sanitized_run_is_trace_identical_to_plain_run(tmp_path, sanitizer):
    """Verification must be a pure observer: same seed, same trace."""

    def run(tag):
        trace = tmp_path / f"{tag}.jsonl"
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=ProbabilisticNetworkAwareScheduler(
                PNAConfig(network_condition=True)
            ),
            jobs=table2_batch("wordcount", scale=0.02)[:2],
            config=EngineConfig(trace_jsonl=str(trace)),
            seed=7,
        )
        sim.run()
        return trace.read_bytes()

    sanitized = run("sanitized")
    set_sanitize_cache(False)
    plain = run("plain")
    assert sanitized and sanitized == plain


# ---------------------------------------------------------------------------
# white-box: the decorator's hit/sample/mismatch mechanics
# ---------------------------------------------------------------------------
class _Counter:
    """A deliberately breakable cache: `total` caches sum(_items)."""

    def __init__(self):
        self._items = []
        self._cache = None

    @cached_on(
        invalidator="_invalidate",
        inputs=("_Counter._items",),
        reference="_total_reference",
        probe=lambda self: self._cache is not None,
        sample=4,
    )
    def total(self):
        if self._cache is None:
            self._cache = sum(self._items)
        return self._cache

    def _total_reference(self):
        return sum(self._items)

    def _invalidate(self):
        self._cache = None

    def add(self, x):
        self._items.append(x)
        self._invalidate()

    def corrupt(self, x):
        self._items.append(x)  # no invalidation: the seeded defect


def test_declaration_registered_at_import():
    decl = DECLARATIONS["_Counter.total"]
    assert decl.inputs == ("_Counter._items",)
    assert decl.reference == "_total_reference"
    assert decl.sample == 4


def test_off_by_default_pays_no_verification(sanitizer):
    set_sanitize_cache(False)
    c = _Counter()
    c.corrupt(5)  # incoherent, but the sanitizer is off
    assert c.total() == 5
    assert c.total() == 5
    assert DECLARATIONS["_Counter.total"].hits == 0


def test_first_hit_then_every_nth_verified(sanitizer):
    c = _Counter()
    c.add(1)
    c.total()  # miss (fills the cache): not a hit
    decl = DECLARATIONS["_Counter.total"]
    assert decl.hits == 0
    for _ in range(9):
        c.total()
    # 9 hits, verification on the 1st, 4th and 8th
    assert decl.hits == 9
    assert decl.verified == 3


def test_incoherent_cache_raises_on_sampled_hit(sanitizer):
    c = _Counter()
    c.add(1)
    c.total()
    c.corrupt(10)  # stale cache survives: next hit must be caught
    with pytest.raises(CacheCoherenceError) as exc:
        c.total()
    assert "_Counter.total" in str(exc.value)
    assert "_total_reference" in str(exc.value)


def test_rejects_nonpositive_sample():
    with pytest.raises(ValueError):
        cached_on(sample=0)


def test_env_var_activation(monkeypatch):
    from repro.coherence import _State

    monkeypatch.setenv("REPRO_SANITIZE", "cache")
    assert _State().cache is True
    monkeypatch.setenv("REPRO_SANITIZE", "cache,other")
    assert _State().cache is True
    monkeypatch.setenv("REPRO_SANITIZE", "")
    assert _State().cache is False
    monkeypatch.delenv("REPRO_SANITIZE")
    assert _State().cache is False
