"""Tests for the Quincy-style matching scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation
from repro.schedulers import MatchingScheduler, RandomScheduler
from repro.units import MB
from repro.workload import JobSpec, table2_batch


def run_small(scheduler, *, seed=3, num_jobs=2):
    jobs = [
        JobSpec.make(f"{i:02d}", "terasort", 8 * 64 * MB, 8, 3)
        for i in range(1, num_jobs + 1)
    ]
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=scheduler,
        jobs=jobs,
        seed=seed,
    )
    return sim, sim.run()


class TestMatchingScheduler:
    def test_completes(self):
        sim, result = run_small(MatchingScheduler())
        assert result.job_completion_times.size == 2
        assert sim.tracker.all_done

    def test_deterministic(self):
        def fp():
            _, result = run_small(MatchingScheduler())
            return [
                (t.kind, t.index, t.node, round(t.end, 6))
                for t in result.collector.task_records
            ]

        assert fp() == fp()

    def test_locality_beats_random(self):
        _, match = run_small(MatchingScheduler(), seed=7)
        _, rand = run_small(RandomScheduler(), seed=7)
        assert (
            match.locality_shares("map")["node"]
            > rand.locality_shares("map")["node"]
        )

    def test_total_map_cost_beats_random(self):
        def map_cost(result):
            return sum(
                t.cost for t in result.collector.task_records if t.kind == "map"
            )

        _, match = run_small(MatchingScheduler(), seed=7)
        _, rand = run_small(RandomScheduler(), seed=7)
        assert map_cost(match) < map_cost(rand)

    def test_colocation_respected(self):
        spec = JobSpec.make("01", "terasort", 8 * 64 * MB, 8, 6)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=MatchingScheduler(),
            jobs=[spec],
            seed=2,
        )
        sim.tracker.start()
        job = None
        while sim.sim.step():
            if job is None and sim.tracker.active_jobs:
                job = sim.tracker.active_jobs[0]
            if job is not None:
                nodes = [r.node.name for r in job.running_reduces()]
                assert len(nodes) == len(set(nodes))

    def test_batch_against_table2(self):
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=4),
            scheduler=MatchingScheduler(),
            jobs=table2_batch("grep", scale=0.02),
            seed=4,
        )
        result = sim.run()
        assert result.job_completion_times.size == 10

    def test_assignment_is_snapshot_optimal_for_maps(self):
        """The task returned for a node belongs to a min-cost matching of
        pending tasks to free slots."""
        from scipy.optimize import linear_sum_assignment

        spec = JobSpec.make("01", "terasort", 6 * 64 * MB, 6, 2)
        sched = MatchingScheduler()
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=sched,
            jobs=[spec],
            seed=9,
        )
        sim.sim.run(until=1e-9)
        job = sim.tracker.active_jobs[0]
        ctx = sim.tracker.ctx
        node = sim.cluster.nodes[0]
        task = sched.select_map(node, job, ctx)
        if task is None:
            pytest.skip("optimum left this node empty")
        # independently recompute the matching cost with/without the choice
        model = sched._models[job.spec.job_id]
        pending = job.pending_maps()
        free = ctx.free_map_nodes()
        slot_nodes = sched._expand_slots(free, lambda n: n.free_map_slots)
        uniq = np.unique(slot_nodes)
        nc = model.map_costs(uniq, np.array([m.index for m in pending]))
        look = {int(u): i for i, u in enumerate(uniq)}
        cost = np.stack([nc[look[int(s)], :] for s in slot_nodes], axis=1)
        rows, cols = linear_sum_assignment(cost)
        chosen_rows = {
            int(r) for r, c in zip(rows, cols)
            if slot_nodes[c] == node.index
        }
        assert pending.index(task) in chosen_rows
