"""White-box tests of LARTS's sweet-spot wait mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation
from repro.schedulers import LARTSScheduler
from repro.units import MB
from repro.workload import JobSpec


def state_with_done_maps(num_maps=10, num_reduces=12, seed=13):
    sched = LARTSScheduler()
    spec = JobSpec.make("01", "terasort", num_maps * 64 * MB,
                        num_maps, num_reduces)
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=sched,
        jobs=[spec],
        seed=seed,
    )
    sim.tracker.start()
    job = None
    for _ in range(500_000):
        if job is None and sim.tracker.active_jobs:
            job = sim.tracker.active_jobs[0]
        if (job is not None and job.all_maps_done) or not sim.sim.step():
            break
    return sim, sched, job


class TestSweetSpotWaits:
    def test_sweet_spot_offer_accepted_immediately(self):
        sim, sched, job = state_with_done_maps()
        pending = job.pending_reduces()
        if not pending:
            pytest.skip("all reduces placed during the map phase")
        task = pending[0]
        spot_name = sched._sweet_spot(job, task.index, sim.tracker.ctx)
        spot = sim.cluster.node(spot_name)
        if job.has_running_reduce_on(spot.name) or spot.free_reduce_slots == 0:
            pytest.skip("sweet spot busy")
        sched._first_offer.pop((job.spec.job_id, task.index), None)
        assert sched.select_reduce(spot, job, sim.tracker.ctx) is task

    def test_non_spot_offer_initially_declined(self):
        sim, sched, job = state_with_done_maps()
        pending = job.pending_reduces()
        if not pending:
            pytest.skip("all reduces placed during the map phase")
        task = pending[0]
        spot = sched._sweet_spot(job, task.index, sim.tracker.ctx)
        other = next(
            (n for n in sim.cluster.nodes_with_free_reduce_slots()
             if n.name != spot and n.rack != sim.cluster.node(spot).rack
             and not job.has_running_reduce_on(n.name)),
            None,
        )
        if other is None:
            pytest.skip("no off-rack free node")
        sched._first_offer.pop((job.spec.job_id, task.index), None)
        assert sched.select_reduce(other, job, sim.tracker.ctx) is None

    def test_rack_level_unlocks_after_node_wait(self):
        sim, sched, job = state_with_done_maps()
        pending = job.pending_reduces()
        if not pending:
            pytest.skip("all reduces placed during the map phase")
        task = pending[0]
        ctx = sim.tracker.ctx
        spot = sched._sweet_spot(job, task.index, ctx)
        spot_rack = sim.cluster.node(spot).rack
        same_rack = next(
            (n for n in sim.cluster.nodes_with_free_reduce_slots()
             if n.name != spot and n.rack == spot_rack
             and not job.has_running_reduce_on(n.name)),
            None,
        )
        if same_rack is None:
            pytest.skip("no same-rack free node")
        key = (job.spec.job_id, task.index)
        sched._first_offer[key] = ctx.now - sched.node_wait - 1.0
        assert sched.select_reduce(same_rack, job, ctx) is task

    def test_any_node_unlocks_after_rack_wait(self):
        sim, sched, job = state_with_done_maps()
        pending = job.pending_reduces()
        if not pending:
            pytest.skip("all reduces placed during the map phase")
        task = pending[0]
        ctx = sim.tracker.ctx
        node = next(
            (n for n in sim.cluster.nodes_with_free_reduce_slots()
             if not job.has_running_reduce_on(n.name)),
            None,
        )
        if node is None:
            pytest.skip("no free node")
        key = (job.spec.job_id, task.index)
        sched._first_offer[key] = ctx.now - sched.rack_wait - 1.0
        assert sched.select_reduce(node, job, ctx) is task

    def test_no_map_output_accepts_anywhere(self):
        """Before any map finishes there is no sweet spot; LARTS launches."""
        sched = LARTSScheduler()
        spec = JobSpec.make("01", "terasort", 10 * 64 * MB, 10, 3)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=sched,
            jobs=[spec],
            seed=13,
        )
        sim.sim.run(until=1e-9)
        job = sim.tracker.active_jobs[0]
        node = sim.cluster.nodes[0]
        task = sched.select_reduce(node, job, sim.tracker.ctx)
        assert task is job.reduces[0]
