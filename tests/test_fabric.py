"""Fabric fault tolerance: multi-path routing, link/switch failure
injection, and link-state re-routing.

Covers the robustness contract end to end:

* **transparency** — a static-routed Clos fabric at oversubscription 1 is
  byte-identical to the plain fat-tree topology, and an empty fault plan
  leaves a link-state run byte-identical to a build without fabric
  support;
* **determinism** — same seed + same plan reproduces the exact trace,
  including mid-flight flow migrations;
* **re-routing** — the control plane converges within the configured
  delay, migrates stranded flows with byte conservation, parks shuffle
  fetches across partitions, and heals them;
* **degradation** — isolated hosts decline slots with ``no_route``, map
  input reads fail over to reachable replicas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, FlowNetwork, fat_tree_topology
from repro.cluster.routing import RoutingController
from repro.cluster.topologies import (
    ROUTING_POLICIES,
    FabricTopology,
    clos_topology,
)
from repro.cluster.topology import fat_tree_graph
from repro.core import PNAConfig, ProbabilisticNetworkAwareScheduler
from repro.engine import EngineConfig, Simulation
from repro.faults import FaultInjector, FaultPlan, LinkFailure, SwitchFailure
from repro.sim import Simulator
from repro.trace.export import jsonl_lines
from repro.units import MB, Gbps
from repro.workload import JobSpec


def run_sim(topology_factory, *, plan=None, seed=7, trace=True,
            delay=0.5, jobs=None, scheduler=None):
    clock = Simulator()
    cluster = Cluster(clock, topology_factory())
    sim = Simulation(
        cluster=cluster,
        scheduler=scheduler or ProbabilisticNetworkAwareScheduler(),
        jobs=jobs or [JobSpec.make("01", "terasort", 16 * 64 * MB, 16, 6)],
        seed=seed,
        config=EngineConfig(
            faults=plan, trace=trace, route_convergence_delay=delay
        ),
    )
    return sim, sim.run()


def trace_lines(result):
    return jsonl_lines(result.trace.events)


# ----------------------------------------------------------------------
# topology unit behaviour
# ----------------------------------------------------------------------
class TestFabricTopology:
    def test_routing_policy_validated(self):
        with pytest.raises(ValueError, match="routing"):
            FabricTopology(fat_tree_graph(4), routing="rip")

    def test_oversubscription_validated(self):
        with pytest.raises(ValueError, match="oversubscription"):
            clos_topology(4, oversubscription=0.5)

    def test_clos_static_graph_matches_fat_tree(self):
        import networkx as nx

        a = clos_topology(4, routing="static").graph
        b = fat_tree_topology(4).graph
        assert nx.utils.graphs_equal(a, b)

    def test_equal_cost_multiplicity_inter_pod(self):
        topo = clos_topology(4)
        paths = topo.equal_cost_paths("h0_0_0", "h2_1_1")
        # k=4: (k/2)^2 = 4 equal-cost inter-pod paths
        assert len(paths) == 4
        lengths = {len(p) for p in paths}
        assert len(lengths) == 1

    def test_ecmp_spreads_flows_across_paths(self):
        topo = clos_topology(4, routing="ecmp")
        routes = {
            tuple(topo.route_for_flow("h0_0_0", "h2_1_1", fid))
            for fid in range(64)
        }
        assert len(routes) > 1  # different fids hash onto different paths

    def test_route_for_flow_is_deterministic(self):
        topo = clos_topology(4, routing="ecmp")
        a = topo.route_for_flow("h0_0_0", "h3_1_0", 17)
        b = topo.route_for_flow("h0_0_0", "h3_1_0", 17)
        assert a == b

    def test_mark_link_down_bumps_route_version(self):
        topo = clos_topology(4)
        v0 = topo.route_version
        assert topo.mark_link_down(("agg0_0", "core0_0"))
        assert topo.route_version > v0
        assert not topo.mark_link_down(("agg0_0", "core0_0"))  # idempotent
        assert topo.mark_link_up(("agg0_0", "core0_0"))
        assert not topo.mark_link_up(("agg0_0", "core0_0"))

    def test_linkstate_routes_avoid_down_links(self):
        topo = clos_topology(4, routing="linkstate")
        route = topo.route("h0_0_0", "h0_1_0")
        fabric_hop = route[1]  # edge -> agg (the access link is unavoidable)
        topo.mark_link_down(fabric_hop)
        for fid in range(16):
            new = topo.route_for_flow("h0_0_0", "h0_1_0", fid)
            assert fabric_hop not in new
            assert tuple(reversed(fabric_hop)) not in new

    def test_partitioned_host_keeps_stale_route(self):
        topo = clos_topology(4, routing="linkstate")
        access = topo.route("h0_0_0", "h0_0_1")[0]  # first hop: access link
        # cut the host's only access link: no live path remains
        host_link = topo.route("h0_0_0", "h3_1_1")[0]
        topo.mark_link_down(host_link)
        assert topo.equal_cost_paths("h0_0_0", "h3_1_1") == []
        stale = topo.route("h0_0_0", "h3_1_1")
        assert stale  # sentinel: last advertised route, crosses the dead link
        assert host_link in stale or tuple(reversed(host_link)) in stale
        del access

    def test_host_components_and_partitioned_pairs(self):
        topo = clos_topology(4)
        assert topo.partitioned_pairs() == 0
        host_link = topo.route("h0_0_0", "h3_1_1")[0]
        topo.mark_link_down(host_link)
        n = topo.num_hosts
        assert topo.partitioned_pairs() == n - 1
        comps = topo.host_components()
        assert sorted(len(c) for c in comps) == [1, n - 1]


# ----------------------------------------------------------------------
# flow network data plane
# ----------------------------------------------------------------------
class TestNetworkDataPlane:
    def _net(self, routing="linkstate"):
        return FlowNetwork(Simulator(), clos_topology(4, routing=routing))

    def test_down_link_has_zero_capacity(self):
        net = self._net()
        link = ("agg0_0", "core0_0")
        base = net.effective_capacity(link)
        assert base > 0
        assert net.set_link_down(link)
        assert net.effective_capacity(link) == 0.0
        assert not net.set_link_down(link)  # idempotent
        assert net.set_link_up(link)
        assert net.effective_capacity(link) == base

    def test_pair_blocked(self):
        net = self._net()
        assert not net.pair_blocked("h0_0_0", "h3_1_1")
        access = net.topology.route("h0_0_0", "h3_1_1")[0]
        net.set_link_down(access)
        assert net.pair_blocked("h0_0_0", "h3_1_1")
        assert not net.pair_blocked("h2_0_0", "h2_0_1")

    def test_isolated_hosts(self):
        net = self._net()
        assert net.isolated_hosts() == frozenset()
        access = net.topology.route("h0_0_0", "h3_1_1")[0]
        net.set_link_down(access)
        assert net.isolated_hosts() == frozenset({"h0_0_0"})
        net.set_link_up(access)
        assert net.isolated_hosts() == frozenset()

    def test_flow_stalls_on_down_link_and_resumes(self):
        net = self._net()
        sim = net.sim
        done = []
        flow = net.start_flow("h0_0_0", "h1_0_0", 100 * MB,
                              on_complete=lambda f: done.append(f))
        link = flow.route[0]
        sim.run(until=0.01)
        net.set_link_down(link)
        sim.run(until=5.0)
        assert not done  # parked at rate 0
        net.set_link_up(link)
        sim.run(until=60.0)
        assert done and done[0] is flow

    def test_reroute_flow_conserves_bytes(self):
        net = self._net()
        sim = net.sim
        done = []
        flow = net.start_flow("h0_0_0", "h2_0_0", 400 * MB,
                              on_complete=lambda f: done.append(sim.now))
        sim.run(until=0.05)
        transferred = flow.bytes_done(sim.now)
        assert 0 < transferred < 400 * MB
        old_route = list(flow.route)
        fabric_link = old_route[1]
        net.set_link_down(fabric_link)
        topo = net.topology
        topo.mark_link_down(fabric_link)
        new_route = topo.route_for_flow(flow.src, flow.dst, flow.fid)
        assert fabric_link not in new_route
        assert net.reroute_flow(flow, new_route)
        net.note_route_change()
        sim.run(until=120.0)
        assert done
        # byte conservation: total delivered equals the flow size exactly
        assert flow.bytes_done(done[0]) == pytest.approx(400 * MB, rel=1e-9)

    def test_rate_matrix_tracks_route_version(self):
        net = self._net()
        r0 = net.rate_matrix().copy()
        names = net.topology.hosts
        i, j = names.index("h0_0_0"), names.index("h3_1_1")
        assert r0[i, j] > 0
        access = net.topology.route("h0_0_0", "h3_1_1")[0]
        net.set_link_down(access)
        net.topology.mark_link_down(access)
        net.note_route_change()
        r1 = net.rate_matrix()
        assert r1[i, j] == 0.0  # partitioned pair advertises rate zero

    def test_inverse_rate_matrix_partition_is_inf_without_warning(self):
        net = self._net()
        cluster = Cluster(net.sim, net.topology)
        cluster.network = net
        access = net.topology.route("h0_0_0", "h3_1_1")[0]
        net.set_link_down(access)
        net.topology.mark_link_down(access)
        net.note_route_change()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            inv = cluster.inverse_rate_matrix()
        names = net.topology.hosts
        assert np.isinf(inv[names.index("h0_0_0"), names.index("h3_1_1")])


# ----------------------------------------------------------------------
# injector + control plane
# ----------------------------------------------------------------------
class TestInjectorAndControlPlane:
    def _build(self, topology, plan):
        clock = Simulator()
        cluster = Cluster(clock, topology)
        return Simulation(
            cluster=cluster,
            scheduler=ProbabilisticNetworkAwareScheduler(),
            jobs=[JobSpec.make("01", "grep", 4 * 32 * MB, 4, 2)],
            config=EngineConfig(faults=plan),
        )

    def test_fabric_faults_require_graph_topology(self):
        from repro.cluster.topology import MatrixTopology

        topo = MatrixTopology([[0, 2], [2, 0]], host_names=["a", "b"])
        plan = FaultPlan(link_failures=(
            LinkFailure(node="a", duration=5.0, at=1.0),
        ))
        with pytest.raises(ValueError, match="graph-backed"):
            self._build(topo, plan)

    def test_unknown_link_rejected(self):
        plan = FaultPlan(link_failures=(
            LinkFailure(link=("h0_0_0", "core0_0"), duration=5.0, at=1.0),
        ))
        with pytest.raises(ValueError, match="link"):
            self._build(clos_topology(4), plan)

    def test_switch_failure_downs_all_incident_links(self):
        sim, result = run_sim(
            lambda: clos_topology(4),
            plan=FaultPlan(switch_failures=(
                SwitchFailure(switch="agg0_0", duration=5.0, at=2.0),
            )),
        )
        events = result.trace.events
        downs = [e for e in events if e.type == "switch_down"]
        assert len(downs) == 1
        # agg0_0 touches k/2 edge switches + k/2 cores = 4 links
        assert downs[0].links == 4
        ups = [e for e in events if e.type == "link_up"]
        assert len(ups) == 4

    def test_overlapping_link_faults_are_ref_counted(self):
        sim, result = run_sim(
            lambda: clos_topology(4),
            plan=FaultPlan(link_failures=(
                LinkFailure(link=("edge0_0", "agg0_0"), duration=6.0, at=2.0),
                LinkFailure(link=("edge0_0", "agg0_0"), duration=3.0, at=4.0),
            )),
        )
        events = result.trace.events
        downs = [e for e in events if e.type == "link_down"]
        ups = [e for e in events if e.type == "link_up"]
        assert len(downs) == 1  # second fault overlaps: no double down
        assert len(ups) == 1    # healed only when the last fault releases
        assert ups[0].t == pytest.approx(8.0)

    def test_convergence_happens_after_configured_delay(self):
        delay = 1.25
        sim, result = run_sim(
            lambda: clos_topology(4),
            plan=FaultPlan(link_failures=(
                LinkFailure(link=("edge0_0", "agg0_0"), duration=15.0, at=3.0),
            )),
            delay=delay,
        )
        events = result.trace.events
        down_t = next(e.t for e in events if e.type == "link_down")
        change_t = next(e.t for e in events if e.type == "route_change")
        assert change_t == pytest.approx(down_t + delay)

    def test_routing_controller_requires_linkstate(self):
        clock = Simulator()
        cluster = Cluster(clock, clos_topology(4, routing="static"))
        with pytest.raises(ValueError, match="linkstate"):
            RoutingController(cluster, convergence_delay=0.5)

    def test_static_fabric_gets_no_controller(self):
        for routing in ROUTING_POLICIES:
            clock = Simulator()
            cluster = Cluster(clock, clos_topology(4, routing=routing))
            sim = Simulation(
                cluster=cluster,
                scheduler=ProbabilisticNetworkAwareScheduler(),
                jobs=[JobSpec.make("01", "grep", 4 * 32 * MB, 4, 2)],
            )
            if routing == "linkstate":
                assert sim.routing is not None
            else:
                assert sim.routing is None


# ----------------------------------------------------------------------
# end-to-end: transparency, determinism, recovery
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_static_clos_transparent_to_fat_tree(self):
        _, a = run_sim(lambda: clos_topology(4, routing="static"))
        _, b = run_sim(lambda: fat_tree_topology(4))
        assert trace_lines(a) == trace_lines(b)

    def test_empty_plan_is_transparent_on_linkstate_fabric(self):
        _, a = run_sim(lambda: clos_topology(4), plan=None)
        _, b = run_sim(lambda: clos_topology(4), plan=FaultPlan())
        assert trace_lines(a) == trace_lines(b)

    def test_same_seed_failure_run_is_deterministic(self):
        plan = FaultPlan(
            link_failures=(
                LinkFailure(link=("edge0_0", "agg0_0"), duration=20.0, at=5.0),
                LinkFailure(node="h1_0_0", duration=10.0, at=8.0),
                LinkFailure(link=("agg2_0", "core0_0"), duration=6.0,
                            every=40.0),
            ),
            switch_failures=(
                SwitchFailure(switch="agg1_1", duration=15.0, at=12.0),
            ),
        )
        _, a = run_sim(lambda: clos_topology(4), plan=plan)
        _, b = run_sim(lambda: clos_topology(4), plan=plan)
        assert a.route_convergences == b.route_convergences
        assert a.reroutes == b.reroutes
        assert trace_lines(a) == trace_lines(b)

    def test_link_failure_run_completes_with_reroutes(self):
        plan = FaultPlan(
            link_failures=(
                LinkFailure(link=("edge0_0", "agg0_0"), duration=20.0, at=5.0),
            ),
            switch_failures=(
                SwitchFailure(switch="agg1_1", duration=15.0, at=12.0),
            ),
        )
        sim, result = run_sim(lambda: clos_topology(4), plan=plan)
        assert sim.tracker.all_done
        assert result.route_convergences >= 1
        types = {e.type for e in result.trace.events}
        assert "route_change" in types

    def test_partition_parks_shuffle_and_heals(self):
        # cut a host's access link mid-run: fetches from it must park,
        # the partition must heal, and the job must still complete with
        # bytes conserved
        plan = FaultPlan(link_failures=(
            LinkFailure(node="h0_0_0", duration=25.0, at=4.0),
        ))
        sim, result = run_sim(lambda: clos_topology(4), plan=plan)
        assert sim.tracker.all_done
        events = result.trace.events
        types = {e.type for e in events}
        assert "partition_healed" in types
        healed = [e for e in events if e.type == "partition_healed"]
        assert sum(e.pairs for e in healed) >= sim.cluster.num_nodes - 1
        # byte conservation across the park/retry/migration machinery
        for job in sim.tracker.finished_jobs:
            totals = np.asarray(job.I, dtype=np.float64).sum(axis=0)
            for task in job.reduces:
                bound = float(totals[task.index])
                assert task.shuffled_bytes <= bound * (1 + 1e-6) + 1.0

    def test_no_route_declines_for_isolated_host(self):
        plan = FaultPlan(link_failures=(
            LinkFailure(node="h0_0_0", duration=30.0, at=1.0),
        ))
        sim, result = run_sim(lambda: clos_topology(4), plan=plan)
        declines = [e for e in result.trace.events
                    if e.type == "decline" and e.reason == "no_route"]
        assert declines
        assert {e.node for e in declines} == {"h0_0_0"}

    def test_netcond_scheduler_survives_partition(self):
        plan = FaultPlan(link_failures=(
            LinkFailure(node="h0_0_0", duration=20.0, at=3.0),
        ))
        sim, result = run_sim(
            lambda: clos_topology(4),
            plan=plan,
            scheduler=ProbabilisticNetworkAwareScheduler(
                PNAConfig(network_condition=True)
            ),
        )
        assert sim.tracker.all_done

    def test_run_summary_mentions_fabric(self):
        plan = FaultPlan(link_failures=(
            LinkFailure(link=("edge0_0", "agg0_0"), duration=20.0, at=5.0),
        ))
        _, result = run_sim(lambda: clos_topology(4), plan=plan)
        assert "route convergences" in result.summary()

    def test_metrics_plane_reports_fabric_counters(self):
        from repro.obs import MetricsConfig

        plan = FaultPlan(link_failures=(
            LinkFailure(node="h0_0_0", duration=25.0, at=4.0),
        ))
        clock = Simulator()
        cluster = Cluster(clock, clos_topology(4))
        sim = Simulation(
            cluster=cluster,
            scheduler=ProbabilisticNetworkAwareScheduler(),
            jobs=[JobSpec.make("01", "terasort", 16 * 64 * MB, 16, 6)],
            seed=7,
            config=EngineConfig(
                faults=plan, metrics=MetricsConfig(period=1.0)
            ),
        )
        result = sim.run()
        names = {inst.name for inst in result.metrics.instruments()}
        assert {"net_reroutes", "net_down_links",
                "net_partitioned_pairs"} <= names
