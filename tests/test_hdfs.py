"""Unit tests for the HDFS model (repro.hdfs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.hdfs import (
    Block,
    HDFSFile,
    NameNode,
    RackAwarePlacement,
    RandomPlacement,
    SkewedPlacement,
)
from repro.sim import Simulator
from repro.units import GB, MB


class TestBlock:
    def test_valid_block(self):
        b = Block(0, "f", 0, 128 * MB, ("a", "b"))
        assert b.replication == 2
        assert b.size == 128 * MB

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Block(0, "f", 0, -1.0, ("a",))

    def test_empty_replicas_rejected(self):
        with pytest.raises(ValueError):
            Block(0, "f", 0, 1.0, ())

    def test_duplicate_replicas_rejected(self):
        with pytest.raises(ValueError):
            Block(0, "f", 0, 1.0, ("a", "a"))


class TestHDFSFile:
    def test_size_and_len(self):
        f = HDFSFile("f", [
            Block(0, "f", 0, 10.0, ("a",)),
            Block(1, "f", 1, 20.0, ("b",)),
        ])
        assert f.size == 30.0
        assert f.num_blocks == 2
        assert len(f) == 2
        assert [b.block_id for b in f] == [0, 1]


class TestCreateFile:
    def test_num_blocks_split(self, namenode):
        f = namenode.create_file("x", 1 * GB, num_blocks=10)
        assert f.num_blocks == 10
        assert all(b.size == pytest.approx(GB / 10) for b in f.blocks)
        assert f.size == pytest.approx(1 * GB)

    def test_block_size_split_with_tail(self, namenode):
        f = namenode.create_file("x", 300 * MB, block_size=128 * MB)
        sizes = [b.size for b in f.blocks]
        assert sizes == [128 * MB, 128 * MB, pytest.approx(44 * MB)]

    def test_default_block_size(self, namenode):
        f = namenode.create_file("x", 256 * MB)
        assert f.num_blocks == 2

    def test_small_file_single_block(self, namenode):
        f = namenode.create_file("x", 1 * MB)
        assert f.num_blocks == 1
        assert f.blocks[0].size == 1 * MB

    def test_replication_applied(self, namenode):
        f = namenode.create_file("x", 10 * MB, replication=3)
        assert all(b.replication == 3 for b in f.blocks)

    def test_duplicate_name_rejected(self, namenode):
        namenode.create_file("x", 1 * MB)
        with pytest.raises(ValueError):
            namenode.create_file("x", 1 * MB)

    def test_both_split_args_rejected(self, namenode):
        with pytest.raises(ValueError):
            namenode.create_file("x", 1 * GB, block_size=1 * MB, num_blocks=2)

    def test_zero_size_rejected(self, namenode):
        with pytest.raises(ValueError):
            namenode.create_file("x", 0.0)

    def test_delete_file(self, namenode):
        namenode.create_file("x", 10 * MB)
        assert namenode.total_blocks() > 0
        namenode.delete_file("x")
        assert namenode.total_blocks() == 0
        with pytest.raises(KeyError):
            namenode.delete_file("x")

    def test_blocks_queryable_by_id(self, namenode):
        f = namenode.create_file("x", 10 * MB, num_blocks=2)
        for b in f.blocks:
            assert namenode.block(b.block_id) is b


class TestLocalityQueries:
    def test_is_local(self, namenode):
        f = namenode.create_file("x", 1 * MB)
        b = f.blocks[0]
        for node in namenode.cluster.nodes:
            assert namenode.is_local(b, node.name) == (node.name in b.replicas)

    def test_closest_replica_local(self, namenode):
        f = namenode.create_file("x", 1 * MB)
        b = f.blocks[0]
        rep = b.replicas[0]
        node, hops = namenode.closest_replica(b, rep)
        assert node == rep
        assert hops == 0.0

    def test_closest_replica_prefers_same_rack(self, namenode):
        cluster = namenode.cluster
        f = namenode.create_file("x", 1 * MB, replication=2)
        b = f.blocks[0]
        # pick a node that holds no replica but shares a rack with one
        racks = {cluster.node(r).rack for r in b.replicas}
        for node in cluster.nodes:
            if node.name not in b.replicas and node.rack in racks:
                _, hops = namenode.closest_replica(b, node.name)
                assert hops == 2.0
                break

    def test_replica_indices_match_names(self, namenode):
        f = namenode.create_file("x", 1 * MB, replication=2)
        b = f.blocks[0]
        idx = namenode.replica_indices(b)
        names = [namenode.cluster.nodes[i].name for i in idx]
        assert tuple(names) == b.replicas


class TestRackAwarePlacement:
    def make(self, racks=3, per_rack=4):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=racks, nodes_per_rack=per_rack).build(sim)
        return cluster, RackAwarePlacement(), np.random.default_rng(0)

    def test_writer_gets_first_replica(self):
        cluster, policy, rng = self.make()
        out = policy.place(cluster, 2, rng, writer="r1n2")
        assert out[0] == "r1n2"

    def test_second_replica_off_rack(self):
        cluster, policy, rng = self.make()
        for _ in range(50):
            out = policy.place(cluster, 2, rng, writer="r0n0")
            assert cluster.node(out[1]).rack != "rack0"

    def test_third_replica_in_second_rack(self):
        cluster, policy, rng = self.make()
        for _ in range(50):
            out = policy.place(cluster, 3, rng, writer="r0n0")
            assert cluster.node(out[2]).rack == cluster.node(out[1]).rack
            assert out[2] != out[1]

    def test_all_replicas_distinct(self):
        cluster, policy, rng = self.make()
        for _ in range(50):
            out = policy.place(cluster, 5, rng)
            assert len(set(out)) == 5

    def test_single_rack_fallback(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=1, nodes_per_rack=4).build(sim)
        out = RackAwarePlacement().place(cluster, 3, np.random.default_rng(0))
        assert len(set(out)) == 3

    def test_replication_exceeding_cluster_rejected(self):
        cluster, policy, rng = self.make(racks=1, per_rack=2)
        with pytest.raises(ValueError):
            policy.place(cluster, 3, rng)

    def test_zero_replication_rejected(self):
        cluster, policy, rng = self.make()
        with pytest.raises(ValueError):
            policy.place(cluster, 0, rng)


class TestRandomPlacement:
    def test_distinct_nodes(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=3).build(sim)
        rng = np.random.default_rng(0)
        for _ in range(20):
            out = RandomPlacement().place(cluster, 3, rng)
            assert len(set(out)) == 3

    def test_roughly_uniform(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=5).build(sim)
        rng = np.random.default_rng(0)
        counts = {n.name: 0 for n in cluster.nodes}
        for _ in range(2000):
            for name in RandomPlacement().place(cluster, 2, rng):
                counts[name] += 1
        values = np.array(list(counts.values()))
        assert values.std() / values.mean() < 0.15


class TestSkewedPlacement:
    def test_skew_concentrates_on_low_index_nodes(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=5).build(sim)
        rng = np.random.default_rng(0)
        policy = SkewedPlacement(alpha=1.5)
        counts = np.zeros(cluster.num_nodes)
        for _ in range(2000):
            for name in policy.place(cluster, 1, rng):
                counts[cluster.node(name).index] += 1
        assert counts[0] > counts[-1] * 2

    def test_alpha_zero_is_uniform_weighting(self):
        policy = SkewedPlacement(alpha=0.0)
        w = policy._weights(10)
        assert np.allclose(w, 0.1)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            SkewedPlacement(alpha=-1.0)


class TestBalance:
    def test_node_block_counts_accounts_every_replica(self, namenode):
        namenode.create_file("x", 10 * MB, num_blocks=5, replication=2)
        counts = namenode.node_block_counts()
        assert sum(counts.values()) == 10  # 5 blocks x RF 2

    def test_placement_deterministic_given_seed(self):
        def layout(seed):
            sim = Simulator()
            cluster = ClusterSpec(num_racks=2, nodes_per_rack=4).build(sim)
            nn = NameNode(cluster, rng=np.random.default_rng(seed))
            f = nn.create_file("x", 1 * GB, num_blocks=8)
            return [b.replicas for b in f.blocks]

        assert layout(3) == layout(3)
        assert layout(3) != layout(4)
