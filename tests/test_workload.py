"""Unit tests for workload models and generators (repro.workload)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.units import GB, MB
from repro.workload import (
    APPLICATIONS,
    GREP,
    JobSpec,
    TABLE2,
    TERASORT,
    WORDCOUNT,
    intermediate_matrix,
    job_from_entry,
    partition_weights,
    poisson_arrivals,
    synthetic_batch,
    table2_batch,
    table2_entries,
    table2_workload,
)
from repro.workload.apps import ApplicationModel


class TestApplications:
    def test_three_benchmark_apps_registered(self):
        assert set(APPLICATIONS) == {"wordcount", "terasort", "grep"}

    def test_terasort_shuffles_its_input(self):
        assert TERASORT.map_output_ratio == 1.0

    def test_grep_is_map_intensive(self):
        assert GREP.map_output_ratio < 0.5

    def test_wordcount_is_shuffle_heavy(self):
        assert WORDCOUNT.map_output_ratio >= 1.5

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            ApplicationModel("x", map_rate=0, reduce_rate=1, map_output_ratio=1)
        with pytest.raises(ValueError):
            ApplicationModel("x", map_rate=1, reduce_rate=-1, map_output_ratio=1)
        with pytest.raises(ValueError):
            ApplicationModel("x", map_rate=1, reduce_rate=1, map_output_ratio=-1)
        with pytest.raises(ValueError):
            ApplicationModel("x", 1, 1, 1, output_gamma=0)


class TestTable2:
    def test_thirty_jobs(self):
        assert len(TABLE2) == 30

    def test_ten_per_application(self):
        for app in ("wordcount", "terasort", "grep"):
            assert len(table2_entries(app)) == 10

    def test_spot_check_rows(self):
        # verbatim rows from the paper's Table II
        by_id = {e.job_id: e for e in TABLE2}
        assert (by_id["01"].num_maps, by_id["01"].num_reduces) == (88, 157)
        assert (by_id["10"].num_maps, by_id["10"].num_reduces) == (930, 197)
        assert (by_id["20"].num_maps, by_id["20"].num_reduces) == (824, 193)
        assert (by_id["30"].num_maps, by_id["30"].num_reduces) == (893, 184)

    def test_sizes_10_to_100(self):
        for app in ("wordcount", "terasort", "grep"):
            sizes = [e.input_gb for e in table2_entries(app)]
            assert sizes == list(range(10, 101, 10))

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            table2_entries("pi-estimation")

    def test_entry_names(self):
        assert TABLE2[0].name == "Wordcount_10GB"


class TestJobSpec:
    def test_block_size(self):
        spec = JobSpec.make("01", "wordcount", 10 * GB, num_maps=88, num_reduces=157)
        assert spec.block_size == pytest.approx(10 * GB / 88)

    def test_shuffle_size_uses_app_ratio(self):
        spec = JobSpec.make("01", "terasort", 10 * GB, 80, 20)
        assert spec.shuffle_size == pytest.approx(10 * GB)

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec.make("x", "grep", 0, 1, 1)
        with pytest.raises(ValueError):
            JobSpec.make("x", "grep", 1 * GB, 0, 1)
        with pytest.raises(ValueError):
            JobSpec.make("x", "grep", 1 * GB, 1, 0)
        with pytest.raises(ValueError):
            JobSpec.make("x", "grep", 1 * GB, 1, 1, submit_time=-5)

    def test_make_accepts_model_instance(self):
        spec = JobSpec.make("x", WORDCOUNT, 1 * GB, 8, 4)
        assert spec.app is WORDCOUNT


class TestGenerators:
    def test_table2_batch_full_scale(self):
        batch = table2_batch("wordcount")
        assert len(batch) == 10
        assert batch[0].num_maps == 88
        assert batch[0].input_size == 10 * GB

    def test_scale_preserves_bytes_per_map(self):
        e = table2_entries("terasort")[4]  # 50 GB, 490 maps
        full = job_from_entry(e)
        scaled = job_from_entry(e, scale=0.1)
        assert scaled.num_maps == 49
        assert scaled.block_size == pytest.approx(full.block_size)

    def test_scale_floors_at_one_task(self):
        e = table2_entries("grep")[0]
        tiny = job_from_entry(e, scale=1e-6)
        assert tiny.num_maps == 1
        assert tiny.num_reduces == 1

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            job_from_entry(TABLE2[0], scale=0.0)

    def test_stagger(self):
        batch = table2_batch("grep", stagger=7.0)
        assert [s.submit_time for s in batch] == [7.0 * i for i in range(10)]

    def test_workload_concatenates_three_batches(self):
        w = table2_workload(scale=0.1)
        assert len(w) == 30
        assert len({s.job_id for s in w}) == 30

    def test_synthetic_batch(self):
        batch = synthetic_batch(
            "terasort", [1 * GB, 2 * GB], bytes_per_map=128 * MB, reduces_per_job=4
        )
        assert batch[0].num_maps == 8
        assert batch[1].num_maps == 16
        assert all(s.num_reduces == 4 for s in batch)

    def test_synthetic_batch_per_job_reduces(self):
        batch = synthetic_batch(
            "grep", [1 * GB, 1 * GB], bytes_per_map=256 * MB, reduces_per_job=[2, 5]
        )
        assert [s.num_reduces for s in batch] == [2, 5]

    def test_synthetic_batch_length_mismatch(self):
        with pytest.raises(ValueError):
            synthetic_batch("grep", [1 * GB], bytes_per_map=1 * MB, reduces_per_job=[1, 2])

    def test_poisson_arrivals_monotone(self):
        batch = table2_batch("wordcount", scale=0.1)
        rng = np.random.default_rng(5)
        out = poisson_arrivals(batch, 30.0, rng)
        times = [s.submit_time for s in out]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] > 0

    def test_poisson_requires_positive_mean(self):
        with pytest.raises(ValueError):
            poisson_arrivals(table2_batch("grep"), 0.0, np.random.default_rng(0))


class TestPartitionWeights:
    def test_uniform_when_alpha_zero(self):
        w = partition_weights(8, 0.0, np.random.default_rng(0))
        assert np.allclose(w, 1 / 8)

    def test_normalised(self, rng):
        w = partition_weights(50, 0.7, rng)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(w > 0)

    def test_skew_increases_with_alpha(self):
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        w_lo = partition_weights(100, 0.2, rng1)
        w_hi = partition_weights(100, 1.5, rng2)
        assert w_hi.max() > w_lo.max()

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            partition_weights(0, 0.5, rng)
        with pytest.raises(ValueError):
            partition_weights(5, -0.1, rng)


class TestIntermediateMatrix:
    def test_shape_and_totals(self, rng):
        b = np.full(4, 100 * MB)
        w = partition_weights(6, 0.0, rng)
        I = intermediate_matrix(b, 2.0, w)
        assert I.shape == (4, 6)
        assert I.sum() == pytest.approx(4 * 100 * MB * 2.0)

    def test_row_proportional_to_block_size(self, rng):
        b = np.array([1.0, 2.0]) * MB
        w = partition_weights(3, 0.0, rng)
        I = intermediate_matrix(b, 1.0, w)
        assert np.allclose(I[1], 2 * I[0])

    def test_noise_preserves_expectation(self):
        rng = np.random.default_rng(0)
        b = np.full(200, 10 * MB)
        w = partition_weights(20, 0.0, rng)
        I = intermediate_matrix(b, 1.0, w, rng, noise_sigma=0.5)
        exact = intermediate_matrix(b, 1.0, w)
        assert I.sum() == pytest.approx(exact.sum(), rel=0.05)
        assert not np.allclose(I, exact)

    def test_noise_requires_rng(self):
        with pytest.raises(ValueError):
            intermediate_matrix(np.ones(2), 1.0, np.ones(2) / 2, noise_sigma=0.5)

    def test_zero_ratio_gives_zero_matrix(self, rng):
        I = intermediate_matrix(np.ones(3), 0.0, np.ones(4) / 4)
        assert np.all(I == 0)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            intermediate_matrix(np.ones((2, 2)), 1.0, np.ones(2) / 2)
        with pytest.raises(ValueError):
            intermediate_matrix(np.ones(2), -1.0, np.ones(2) / 2)
