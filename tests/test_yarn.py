"""Tests for the YARN container mode (repro.yarn)."""

from __future__ import annotations

import pytest

from repro.cluster.node import SlotExhausted
from repro.core import PNAConfig, ProbabilisticNetworkAwareScheduler
from repro.engine import Simulation
from repro.schedulers import FairScheduler, RandomScheduler
from repro.units import MB
from repro.workload import JobSpec, table2_batch
from repro.yarn import ContainerNode, Resource, YarnClusterSpec


class TestResource:
    def test_arithmetic(self):
        a = Resource(1024, 2)
        b = Resource(512, 1)
        assert a + b == Resource(1536, 3)
        assert a - b == Resource(512, 1)
        assert 3 * b == Resource(1536, 3)

    def test_fits_in(self):
        assert Resource(512, 1).fits_in(Resource(1024, 2))
        assert not Resource(2048, 1).fits_in(Resource(1024, 8))
        assert not Resource(512, 4).fits_in(Resource(1024, 2))

    def test_count_fitting(self):
        cap = Resource(8192, 8)
        assert cap.count_fitting(Resource(1024, 1)) == 8
        assert cap.count_fitting(Resource(2048, 1)) == 4
        assert cap.count_fitting(Resource(1024, 3)) == 2  # vcore-bound

    def test_memory_only_demand(self):
        assert Resource(8192, 8).count_fitting(Resource(1024, 0)) == 8

    def test_zero_demand_rejected(self):
        with pytest.raises(ValueError):
            Resource(8192, 8).count_fitting(Resource(0, 0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Resource(-1, 0)


class TestContainerNode:
    def make(self):
        return ContainerNode(
            "n0", "rack0",
            capacity=Resource(8192, 8),
            map_demand=Resource(1024, 1),
            reduce_demand=Resource(2048, 1),
        )

    def test_fungible_capacity(self):
        n = self.make()
        assert n.free_map_slots == 8
        assert n.free_reduce_slots == 4

    def test_mixed_allocation_shares_pool(self):
        n = self.make()
        n.acquire_reduce_slot()          # 2 GB gone
        n.acquire_reduce_slot()          # 4 GB gone
        assert n.free_map_slots == 4     # 4 GB left -> 4 maps
        assert n.free_reduce_slots == 2
        n.acquire_map_slot()
        n.acquire_map_slot()
        n.acquire_map_slot()
        assert n.free_reduce_slots == 0  # 1 GB left: no 2 GB container
        assert n.free_map_slots == 1

    def test_exhaustion(self):
        n = self.make()
        for _ in range(8):
            n.acquire_map_slot()
        with pytest.raises(SlotExhausted):
            n.acquire_map_slot()
        with pytest.raises(SlotExhausted):
            n.acquire_reduce_slot()

    def test_release_restores_capacity(self):
        n = self.make()
        n.acquire_reduce_slot()
        n.release_reduce_slot()
        assert n.used == Resource(0, 0)
        assert n.free_map_slots == 8

    def test_over_release_rejected(self):
        n = self.make()
        with pytest.raises(SlotExhausted):
            n.release_map_slot()

    def test_demand_exceeding_capacity_rejected(self):
        with pytest.raises(ValueError):
            ContainerNode(
                "n0", "r0",
                capacity=Resource(1024, 1),
                map_demand=Resource(2048, 1),
                reduce_demand=Resource(512, 1),
            )


class TestYarnSimulation:
    def test_batch_completes_under_every_scheduler(self):
        for sched in (RandomScheduler(), FairScheduler(),
                      ProbabilisticNetworkAwareScheduler()):
            sim = Simulation(
                cluster=YarnClusterSpec(num_racks=2, nodes_per_rack=3),
                scheduler=sched,
                jobs=table2_batch("grep", scale=0.03),
                seed=5,
            )
            result = sim.run()
            assert result.job_completion_times.size == 10

    def test_resources_fully_released_after_run(self):
        sim = Simulation(
            cluster=YarnClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=RandomScheduler(),
            jobs=[JobSpec.make("01", "terasort", 8 * 64 * MB, 8, 4)],
            seed=5,
        )
        sim.run()
        for node in sim.cluster.nodes:
            assert node.used == Resource(0, 0)

    def test_container_mode_flexes_map_parallelism(self):
        """During a map-only phase, container nodes run more than 4 maps —
        the fungibility win over static slots."""
        from repro.engine import EngineConfig

        spec = JobSpec.make("01", "terasort", 60 * 64 * MB, 60, 2)
        sim = Simulation(
            cluster=YarnClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=RandomScheduler(),
            jobs=[spec],
            config=EngineConfig(assign_multiple=True),
            seed=5,
        )
        sim.tracker.start()
        peak = 0
        while sim.sim.step():
            peak = max(peak, max(n.running_maps for n in sim.cluster.nodes))
        assert peak > 4  # impossible under the 4-map slot model

    def test_pna_with_netcond_on_yarn(self):
        sim = Simulation(
            cluster=YarnClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=ProbabilisticNetworkAwareScheduler(
                PNAConfig(network_condition=True)
            ),
            jobs=table2_batch("wordcount", scale=0.02),
            seed=5,
        )
        result = sim.run()
        assert result.job_completion_times.size == 10

    def test_deterministic(self):
        def fp():
            sim = Simulation(
                cluster=YarnClusterSpec(num_racks=2, nodes_per_rack=3),
                scheduler=ProbabilisticNetworkAwareScheduler(),
                jobs=table2_batch("grep", scale=0.02),
                seed=9,
            )
            result = sim.run()
            return [
                (t.kind, t.index, t.node, round(t.end, 6))
                for t in result.collector.task_records
            ]

        assert fp() == fp()
