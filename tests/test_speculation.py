"""Tests for speculative (backup) map execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BackgroundSpec, ClusterSpec
from repro.engine import EngineConfig, Simulation, TaskState
from repro.hdfs import SubsetPlacement
from repro.schedulers import RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


def spec_config(**kw):
    defaults = dict(speculative=True, speculative_min_age=5.0,
                    speculative_progress_factor=0.9)
    defaults.update(kw)
    return EngineConfig(**defaults)


def straggler_sim(config=None, seed=2):
    """A cluster with one very slow node, so its maps straggle."""
    factors = [1.0] * 6
    factors[5] = 0.05  # r1n2 computes at 5 % speed
    spec = JobSpec.make("01", "terasort", 12 * 64 * MB, 12, 2)
    return Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3,
                            compute_factors=factors),
        scheduler=RandomScheduler(),
        jobs=[spec],
        config=config or spec_config(),
        seed=seed,
    )


class TestConfigValidation:
    def test_valid_defaults(self):
        cfg = EngineConfig()
        assert cfg.speculative is False

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            EngineConfig(speculative_min_age=-1)
        with pytest.raises(ValueError):
            EngineConfig(speculative_progress_factor=0.0)
        with pytest.raises(ValueError):
            EngineConfig(speculative_progress_factor=1.5)
        with pytest.raises(ValueError):
            EngineConfig(speculative_cap=0.0)


class TestSpeculativeExecution:
    def test_backup_attempts_launched_for_stragglers(self):
        sim = straggler_sim()
        result = sim.run()
        assert result.collector.speculative_launched > 0

    def test_speculation_beats_no_speculation_with_stragglers(self):
        jct_off = straggler_sim(config=EngineConfig()).run().mean_jct
        jct_on = straggler_sim().run().mean_jct
        assert jct_on < jct_off

    def test_off_by_default_no_backups(self):
        sim = straggler_sim(config=EngineConfig())
        result = sim.run()
        assert result.collector.speculative_launched == 0
        assert result.collector.speculated_tasks() == 0

    def test_all_slots_released_after_cancellations(self):
        sim = straggler_sim()
        sim.run()
        for node in sim.cluster.nodes:
            assert node.running_maps == 0
            assert node.running_reduces == 0

    def test_each_map_recorded_once(self):
        sim = straggler_sim()
        result = sim.run()
        maps = [t for t in result.collector.task_records if t.kind == "map"]
        assert len(maps) == 12
        assert len({t.index for t in maps}) == 12

    def test_winner_attempt_count_recorded(self):
        sim = straggler_sim()
        result = sim.run()
        if result.collector.speculative_launched:
            assert any(t.attempts > 1 for t in result.collector.task_records)

    def test_byte_conservation_with_speculation(self):
        """Reduces still shuffle exactly the I matrix despite killed clones."""
        sim = straggler_sim()
        result = sim.run()
        job = sim.tracker.finished_jobs[0]
        shuffled = sum(
            t.bytes_in for t in result.collector.task_records
            if t.kind == "reduce"
        )
        assert shuffled == pytest.approx(job.I.sum(), rel=1e-6)

    def test_no_speculation_on_homogeneous_fast_cluster(self):
        """Without stragglers, the progress gate keeps backups rare."""
        spec = JobSpec.make("01", "terasort", 12 * 64 * MB, 12, 2)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=RandomScheduler(),
            jobs=[spec],
            config=spec_config(speculative_progress_factor=0.3),
            seed=2,
        )
        result = sim.run()
        assert result.collector.speculative_launched <= 2

    def test_cap_limits_concurrent_backups(self):
        cfg = spec_config(speculative_cap=0.01)  # at most 1 for a 12-map job
        sim = straggler_sim(config=cfg)
        sim.tracker.start()
        job = None
        while sim.sim.step():
            if job is None and sim.tracker.active_jobs:
                job = sim.tracker.active_jobs[0]
            if job is not None and not job.done:
                backups = sum(
                    1 for m in job.running_maps() if len(m.attempts) > 1
                )
                assert backups <= 1

    def test_determinism_with_speculation(self):
        def fp():
            sim = straggler_sim()
            result = sim.run()
            return [
                (t.index, t.node, round(t.end, 6), t.attempts)
                for t in result.collector.task_records
            ]

        assert fp() == fp()


class TestAttemptSemantics:
    def test_launch_speculative_requires_running(self):
        sim = straggler_sim()
        sim.tracker.start()
        sim.sim.run(until=1e-9)
        job = sim.tracker.active_jobs[0]
        pending = job.pending_maps()[0]
        with pytest.raises(RuntimeError):
            pending.launch_speculative(sim.cluster.nodes[0])

    def test_no_duplicate_attempt_on_same_node(self):
        sim = straggler_sim()
        sim.tracker.start()
        sim.sim.run(until=1e-9)
        job = sim.tracker.active_jobs[0]
        task = job.pending_maps()[0]
        node = sim.cluster.nodes[0]
        task.launch(node)
        with pytest.raises(RuntimeError):
            task.launch_speculative(node)

    def test_d_read_reports_best_attempt(self):
        sim = straggler_sim()
        sim.tracker.start()
        sim.sim.run(until=1e-9)
        job = sim.tracker.active_jobs[0]
        task = job.pending_maps()[0]
        slow = sim.cluster.node("r1n2")   # compute factor 0.05
        fast = sim.cluster.node("r0n0")
        task.launch(slow)
        task.launch_speculative(fast)
        sim.sim.run(until=sim.sim.now + 10.0)
        if not task.done:
            best = task.d_read(sim.sim.now)
            per_attempt = [a.d_read(sim.sim.now) for a in task.attempts]
            assert best == max(per_attempt)
