"""Unit tests for the discrete-event kernel (repro.sim)."""

from __future__ import annotations

import pytest

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]
        assert sim.now == 5.0

    def test_args_are_passed(self, sim):
        got = []
        sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
        sim.run()
        assert got == [(1, "x")]

    def test_at_absolute_time(self, sim):
        fired = []
        sim.at(3.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.0]

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo_order(self, sim):
        order = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_inf_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(float("inf"), lambda: None)

    def test_past_absolute_time_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(1.0, lambda: None)

    def test_schedule_from_callback(self, sim):
        fired = []

        def first():
            sim.schedule(2.0, lambda: fired.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert not ev.active

    def test_cancel_from_earlier_event(self, sim):
        fired = []
        later = sim.schedule(2.0, lambda: fired.append("later"))
        sim.schedule(1.0, later.cancel)
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        ev.cancel()
        assert sim.pending == 1


class TestRunControls:
    def test_run_until_stops_clock_exactly(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_run_until_is_resumable(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        sim.run()
        assert fired == [1, 10]

    def test_run_until_past_raises(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_run_returns_event_count(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run() == 5

    def test_max_events_budget(self, sim):
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending == 7

    def test_step(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is False

    def test_reentrant_run_raises(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_processed_counter(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.processed == 2

    def test_peek(self, sim):
        assert sim.peek() is None
        ev = sim.schedule(4.0, lambda: None)
        sim.schedule(7.0, lambda: None)
        assert sim.peek() == 4.0
        ev.cancel()
        assert sim.peek() == 7.0


class TestPeriodicTask:
    def test_fires_on_period(self, sim):
        times = []
        task = sim.every(3.0, lambda: times.append(sim.now))
        sim.run(until=10.0)
        task.stop()
        assert times == [0.0, 3.0, 6.0, 9.0]

    def test_start_offset(self, sim):
        times = []
        sim.every(3.0, lambda: times.append(sim.now), start=1.0)
        sim.run(until=8.0)
        assert times == [1.0, 4.0, 7.0]

    def test_stop_prevents_future_firings(self, sim):
        times = []
        task = sim.every(1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, task.stop)
        sim.run(until=10.0)
        assert times == [0.0, 1.0, 2.0]
        assert task.stopped

    def test_callback_may_stop_itself(self, sim):
        times = []

        def cb():
            times.append(sim.now)
            if len(times) == 2:
                task.stop()

        task = sim.every(1.0, cb)
        sim.run(until=10.0)
        assert times == [0.0, 1.0]

    def test_jitter_applies(self, sim):
        times = []
        sim.every(2.0, lambda: times.append(sim.now), jitter=lambda: 0.5)
        sim.run(until=6.0)
        assert times == [0.0, 2.5, 5.0]

    def test_bad_period_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.every(0.0, lambda: None)

    def test_stop_is_idempotent(self, sim):
        task = sim.every(1.0, lambda: None)
        task.stop()
        task.stop()
        assert task.stopped


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        def trace():
            s = Simulator()
            out = []
            for i in range(50):
                s.schedule((i * 37) % 11 + 0.25, lambda i=i: out.append((s.now, i)))
            s.run()
            return out

        assert trace() == trace()
