"""Streaming log-bucket histogram: scheme, merge and quantile properties.

The metrics plane leans on three properties of :class:`LogHistogram` that
sketches with data-dependent centroids cannot offer: boundaries are a pure
function of the scheme (so same observations in any order ⇒ identical
state), merging is exact bucket-wise addition, and a reported quantile is
a deterministic *upper bound* within one growth factor of the true value.
The hypothesis tests pin all three.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import LogHistogram

# small scheme with round boundaries [1, 2, 4, 8, 16] for edge-case tests
SMALL = dict(lo=1.0, growth=2.0, buckets=4)

# finite non-negative observations spanning underflow to overflow of the
# default scheme (lo=1e-3, top boundary 1e7)
values = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# construction and validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    dict(lo=0.0), dict(lo=-1.0), dict(lo=math.inf),
    dict(growth=1.0), dict(growth=0.5), dict(growth=math.inf),
    dict(buckets=0), dict(buckets=-3), dict(buckets=True),
])
def test_bad_scheme_rejected(kwargs):
    with pytest.raises(ValueError):
        LogHistogram(**kwargs)


@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf, -0.001])
def test_bad_observation_rejected(bad):
    hist = LogHistogram()
    with pytest.raises(ValueError):
        hist.observe(bad)
    assert hist.count == 0  # a rejected observation leaves no trace


def test_boundaries_are_shared_and_deterministic():
    a, b = LogHistogram(), LogHistogram()
    assert a.boundaries is b.boundaries  # module-level scheme cache
    # each boundary is computed independently, not by running product
    assert a.boundaries[0] == 1e-3
    assert a.boundaries[20] == pytest.approx(1e-2, rel=1e-12)
    assert a.boundaries[200] == pytest.approx(1e7, rel=1e-12)


# ----------------------------------------------------------------------
# bucket edges
# ----------------------------------------------------------------------
def test_bucket_edges():
    hist = LogHistogram(**SMALL)  # boundaries [1, 2, 4, 8, 16]
    hist.observe(0.5)    # underflow
    hist.observe(1.0)    # first bucket, inclusive lower edge
    hist.observe(2.0)    # second bucket (boundaries are half-open)
    hist.observe(15.999)  # last bucket
    hist.observe(16.0)   # overflow, inclusive
    assert hist.low == 1
    assert hist.high == 1
    assert hist.counts == [1, 1, 0, 1]
    assert hist.count == 5
    assert hist.total == pytest.approx(0.5 + 1 + 2 + 15.999 + 16)


def test_quantile_edges():
    hist = LogHistogram(**SMALL)
    assert math.isnan(hist.quantile(0.5))  # empty
    hist.observe(0.5)
    assert hist.quantile(0.5) == 1.0  # underflow reports lo
    hist.observe(100.0)
    assert hist.quantile(1.0) == math.inf  # overflow: only ">= top" is known
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        hist.quantile(math.nan)


def test_merge_rejects_different_schemes():
    with pytest.raises(ValueError):
        LogHistogram().merge(LogHistogram(**SMALL))


def test_percentile_labels():
    hist = LogHistogram(**SMALL)
    hist.observe(3.0)
    out = hist.percentiles(50, 99.9)
    assert set(out) == {"p50", "p99.9"}
    assert out["p50"] == 4.0  # upper boundary of the [2, 4) bucket


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(st.lists(values, max_size=60), st.lists(values, max_size=60))
def test_merge_equals_histogram_of_concatenation(xs, ys):
    merged = LogHistogram()
    merged.observe_many(xs)
    other = LogHistogram()
    other.observe_many(ys)
    assert merged.merge(other) is merged

    combined = LogHistogram()
    combined.observe_many(xs + ys)
    # bucket contents are integer counts: exact equality
    assert merged.counts == combined.counts
    assert (merged.low, merged.high) == (combined.low, combined.high)
    assert merged.count == combined.count == len(xs) + len(ys)
    # the running sum is float addition in a different order: tolerance
    assert merged.total == pytest.approx(combined.total, rel=1e-9, abs=1e-9)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.floats(min_value=1e-3, max_value=1e6, allow_nan=False),
        min_size=1, max_size=60,
    ),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_quantile_is_tight_upper_bound(xs, q):
    """For in-range samples: true quantile < estimate <= true * growth."""
    hist = LogHistogram()
    hist.observe_many(xs)
    estimate = hist.quantile(q)
    rank = max(1, math.ceil(q * len(xs)))
    true = sorted(xs)[rank - 1]
    assert true < estimate <= true * hist.growth * (1 + 1e-12)


@settings(max_examples=100, deadline=None)
@given(st.lists(values, max_size=60))
def test_doc_round_trip_is_canonical(xs):
    hist = LogHistogram()
    hist.observe_many(xs)
    doc = hist.to_doc()
    # canonical JSON of the doc is byte-stable across a round trip
    clone = LogHistogram.from_doc(
        json.loads(json.dumps(doc, sort_keys=True, separators=(",", ":")))
    )
    assert clone.to_doc() == doc
    assert clone.counts == hist.counts
    assert (clone.low, clone.high, clone.count) == (
        hist.low, hist.high, hist.count,
    )
    if xs:
        assert clone.quantile(0.5) == hist.quantile(0.5)
        assert clone.mean == pytest.approx(hist.mean)
    else:
        assert math.isnan(clone.mean)


@settings(max_examples=100, deadline=None)
@given(st.lists(values, max_size=60))
def test_order_independence(xs):
    forward = LogHistogram()
    forward.observe_many(xs)
    backward = LogHistogram()
    backward.observe_many(reversed(xs))
    assert forward.counts == backward.counts
    assert forward.count == backward.count
