"""Property-based tests for the YARN container node (resource invariants)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.node import SlotExhausted
from repro.yarn import ContainerNode, Resource


def make_node(mem=8192, vcores=8, map_mem=1024, red_mem=2048):
    return ContainerNode(
        "n0", "rack0",
        capacity=Resource(mem, vcores),
        map_demand=Resource(map_mem, 1),
        reduce_demand=Resource(red_mem, 1),
    )


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(st.sampled_from(["am", "rm", "ar", "rr"]), max_size=60))
def test_arbitrary_op_sequences_preserve_invariants(ops):
    """Any mix of acquire/release calls keeps the node self-consistent:

    * used never exceeds capacity or goes negative;
    * running counters match what succeeded;
    * free slot counts equal what the remaining pool actually fits.
    """
    node = make_node()
    maps = reduces = 0
    for op in ops:
        try:
            if op == "am":
                node.acquire_map_slot()
                maps += 1
            elif op == "ar":
                node.acquire_reduce_slot()
                reduces += 1
            elif op == "rm":
                node.release_map_slot()
                maps -= 1
            else:
                node.release_reduce_slot()
                reduces -= 1
        except SlotExhausted:
            pass  # rejected ops must not mutate state (checked below)
        # invariants after every step
        assert not node.used.any_negative
        assert node.used.fits_in(node.capacity)
        assert node.running_maps == maps
        assert node.running_reduces == reduces
        expected_used = (
            maps * node.map_demand + reduces * node.reduce_demand
        )
        assert node.used == expected_used
        assert node.free_map_slots == node.available.count_fitting(
            node.map_demand
        )


@settings(max_examples=30, deadline=None)
@given(
    mem=st.integers(min_value=1024, max_value=65536),
    vcores=st.integers(min_value=1, max_value=64),
    map_mem=st.integers(min_value=128, max_value=4096),
    red_mem=st.integers(min_value=128, max_value=4096),
)
def test_capacity_accounting_closed_form(mem, vcores, map_mem, red_mem):
    cap = Resource(mem, vcores)
    m = Resource(map_mem, 1)
    r = Resource(red_mem, 1)
    if not (m.fits_in(cap) and r.fits_in(cap)):
        with pytest.raises(ValueError):
            ContainerNode("n", "r", capacity=cap, map_demand=m, reduce_demand=r)
        return
    node = ContainerNode("n", "r", capacity=cap, map_demand=m, reduce_demand=r)
    # fill with maps only: exactly min(mem//map_mem, vcores) fit
    expected = min(mem // map_mem, vcores)
    count = 0
    while True:
        try:
            node.acquire_map_slot()
            count += 1
        except SlotExhausted:
            break
    assert count == expected


@settings(max_examples=30, deadline=None)
@given(
    a_mem=st.integers(0, 10_000), a_vc=st.integers(0, 100),
    b_mem=st.integers(0, 10_000), b_vc=st.integers(0, 100),
)
def test_resource_arithmetic_properties(a_mem, a_vc, b_mem, b_vc):
    a = Resource(a_mem, a_vc)
    b = Resource(b_mem, b_vc)
    assert (a + b) - b == a
    assert a + b == b + a
    if b.fits_in(a):
        assert not (a - b).any_negative
