"""Edge-case simulations: degenerate clusters, extreme shapes, RF=1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import PNAConfig, ProbabilisticNetworkAwareScheduler
from repro.engine import EngineConfig, Simulation
from repro.schedulers import CouplingScheduler, FairScheduler, RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


def run_sim(jobs, *, racks=1, per_rack=1, scheduler=None, config=None, seed=2):
    sim = Simulation(
        cluster=ClusterSpec(num_racks=racks, nodes_per_rack=per_rack),
        scheduler=scheduler or RandomScheduler(),
        jobs=jobs,
        config=config or EngineConfig(replication=1),
        seed=seed,
    )
    return sim, sim.run()


class TestSingleNodeCluster:
    def test_everything_is_node_local(self):
        jobs = [JobSpec.make("01", "terasort", 4 * 64 * MB, 4, 2)]
        sim, result = run_sim(jobs)
        shares = result.locality_shares()
        assert shares["node"] == 1.0
        assert result.bytes_over_fabric == 0.0

    def test_pna_on_single_node(self):
        jobs = [JobSpec.make("01", "wordcount", 4 * 64 * MB, 4, 2)]
        sim, result = run_sim(
            jobs, scheduler=ProbabilisticNetworkAwareScheduler()
        )
        assert result.job_completion_times.size == 1

    def test_reduce_waves_on_two_slots(self):
        """8 reducers through one node's 2 slots: four sequential waves."""
        jobs = [JobSpec.make("01", "terasort", 4 * 64 * MB, 4, 8)]
        sim, result = run_sim(jobs, scheduler=FairScheduler())
        reduces = sorted(
            (t for t in result.collector.task_records if t.kind == "reduce"),
            key=lambda t: t.start,
        )
        assert len(reduces) == 8
        # never more than 2 overlapping
        for i, r in enumerate(reduces):
            overlapping = sum(
                1 for o in reduces if o.start < r.end and o.end > r.start
            )
            assert overlapping <= 2 + 1  # itself plus at most two concurrent


class TestReplicationOne:
    def test_rf1_single_replica_per_block(self):
        jobs = [JobSpec.make("01", "grep", 6 * 64 * MB, 6, 2)]
        sim, result = run_sim(jobs, racks=2, per_rack=3)
        job = sim.tracker.finished_jobs[0]
        for b in job.file.blocks:
            assert b.replication == 1

    def test_rf1_completes_under_pna(self):
        jobs = [JobSpec.make("01", "terasort", 8 * 64 * MB, 8, 3)]
        sim, result = run_sim(
            jobs, racks=2, per_rack=3,
            scheduler=ProbabilisticNetworkAwareScheduler(),
        )
        assert sim.tracker.all_done


class TestExtremeShapes:
    def test_single_map_single_reduce(self):
        jobs = [JobSpec.make("01", "wordcount", 64 * MB, 1, 1)]
        sim, result = run_sim(jobs, racks=2, per_rack=2)
        assert result.job_completion_times.size == 1
        assert len(result.collector.task_records) == 2

    def test_more_reducers_than_cluster_slots(self):
        # 2 nodes x 2 reduce slots = 4 slots; 12 reducers -> 3+ waves
        jobs = [JobSpec.make("01", "terasort", 4 * 64 * MB, 4, 12)]
        sim, result = run_sim(jobs, racks=1, per_rack=2,
                              scheduler=FairScheduler())
        reduces = [t for t in result.collector.task_records if t.kind == "reduce"]
        assert len(reduces) == 12

    def test_colocation_avoidance_with_scarce_nodes(self):
        """PNA never co-locates a job's reducers, so 6 reducers on 3 nodes
        must run in at least two waves — but still complete."""
        jobs = [JobSpec.make("01", "terasort", 4 * 64 * MB, 4, 6)]
        sim, result = run_sim(
            jobs, racks=1, per_rack=3,
            scheduler=ProbabilisticNetworkAwareScheduler(),
        )
        assert sim.tracker.all_done

    def test_tiny_blocks(self):
        jobs = [JobSpec.make("01", "grep", 20 * MB, 20, 2)]  # 1 MB splits
        sim, result = run_sim(jobs, racks=2, per_rack=2)
        assert sim.tracker.all_done

    def test_many_small_jobs(self):
        jobs = [
            JobSpec.make(f"{i:02d}", "grep", 2 * 64 * MB, 2, 1)
            for i in range(1, 13)
        ]
        sim, result = run_sim(jobs, racks=2, per_rack=2)
        assert result.job_completion_times.size == 12


class TestHeartbeatSensitivity:
    def test_faster_heartbeats_do_not_break(self):
        jobs = [JobSpec.make("01", "terasort", 6 * 64 * MB, 6, 3)]
        sim, result = run_sim(
            jobs, racks=2, per_rack=2,
            config=EngineConfig(replication=1, heartbeat_period=0.5),
        )
        assert sim.tracker.all_done

    def test_slow_heartbeats_stretch_ramp(self):
        def first_starts(period):
            jobs = [JobSpec.make("01", "terasort", 12 * 64 * MB, 12, 2)]
            sim, result = run_sim(
                jobs, racks=2, per_rack=2,
                config=EngineConfig(replication=1, heartbeat_period=period),
            )
            return sorted(
                t.start for t in result.collector.task_records if t.kind == "map"
            )[5]

        assert first_starts(10.0) > first_starts(1.0)


class TestCouplingEdge:
    def test_coupling_single_node(self):
        jobs = [JobSpec.make("01", "wordcount", 4 * 64 * MB, 4, 2)]
        sim, result = run_sim(jobs, scheduler=CouplingScheduler())
        assert sim.tracker.all_done

    def test_coupling_many_reducers(self):
        jobs = [JobSpec.make("01", "terasort", 6 * 64 * MB, 6, 10)]
        sim, result = run_sim(jobs, racks=2, per_rack=3,
                              scheduler=CouplingScheduler())
        assert sim.tracker.all_done
