"""Tests for the background cross-traffic generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BackgroundSpec, BackgroundTraffic, ClusterSpec
from repro.sim import Simulator
from repro.units import MB


def make(spec, seed=0, racks=2, per_rack=3):
    sim = Simulator()
    cluster = ClusterSpec(num_racks=racks, nodes_per_rack=per_rack).build(sim)
    bg = BackgroundTraffic(cluster.network, spec, np.random.default_rng(seed))
    return sim, cluster, bg


class TestBackgroundSpec:
    def test_defaults_valid(self):
        BackgroundSpec()

    def test_bad_intensity(self):
        with pytest.raises(ValueError):
            BackgroundSpec(intensity=1.0)
        with pytest.raises(ValueError):
            BackgroundSpec(intensity=-0.1)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            BackgroundSpec(mean_size=0.0)

    def test_bad_hotspot(self):
        with pytest.raises(ValueError):
            BackgroundSpec(hotspot_alpha=-1.0)


class TestBackgroundTraffic:
    def test_generates_flows(self):
        sim, cluster, bg = make(BackgroundSpec(intensity=0.3))
        bg.start()
        sim.run(until=60.0)
        assert bg.flows_issued > 0
        assert bg.bytes_issued > 0

    def test_offered_load_tracks_intensity(self):
        """Mean issued rate lands near the configured fraction of edge
        capacity (Poisson noise allowed)."""
        spec = BackgroundSpec(intensity=0.25, mean_size=64 * MB)
        sim, cluster, bg = make(spec, seed=1)
        bg.start()
        horizon = 600.0
        sim.run(until=horizon)
        total_edge = sum(
            cluster.topology.link_capacity(
                cluster.topology.route(h, [x for x in cluster.topology.hosts if x != h][0])[0]
            )
            for h in cluster.topology.hosts
        )
        offered = bg.bytes_issued / horizon
        target = spec.intensity * total_edge / 2.0
        assert offered == pytest.approx(target, rel=0.25)

    def test_stop_halts_arrivals(self):
        sim, cluster, bg = make(BackgroundSpec(intensity=0.3))
        bg.start()
        sim.run(until=30.0)
        n = bg.flows_issued
        bg.stop()
        sim.run(until=60.0)
        assert bg.flows_issued == n

    def test_should_continue_predicate(self):
        done = {"flag": False}
        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=3).build(sim)
        bg = BackgroundTraffic(
            cluster.network,
            BackgroundSpec(intensity=0.3),
            np.random.default_rng(0),
            should_continue=lambda: not done["flag"],
        )
        bg.start()
        sim.run(until=20.0)
        n = bg.flows_issued
        assert n > 0
        done["flag"] = True
        sim.run(until=60.0)
        # at most one further arrival event fires before noticing the flag
        assert bg.flows_issued <= n + 1

    def test_hotspot_concentrates_endpoints(self):
        spec = BackgroundSpec(intensity=0.3, hotspot_alpha=2.0)
        sim, cluster, bg = make(spec, seed=3, racks=2, per_rack=5)
        # inspect the weight vector directly: heavily skewed to node 0
        assert bg.weights[0] > 5 * bg.weights[-1]

    def test_uniform_weights_without_hotspot(self):
        sim, cluster, bg = make(BackgroundSpec(intensity=0.2, hotspot_alpha=0.0))
        assert np.allclose(bg.weights, bg.weights[0])

    def test_start_idempotent(self):
        sim, cluster, bg = make(BackgroundSpec(intensity=0.2))
        bg.start()
        bg.start()
        sim.run(until=10.0)
        assert bg.flows_issued >= 0

    def test_deterministic_given_seed(self):
        def trace(seed):
            sim, cluster, bg = make(BackgroundSpec(intensity=0.3), seed=seed)
            bg.start()
            sim.run(until=30.0)
            return (bg.flows_issued, bg.bytes_issued)

        assert trace(5) == trace(5)
        assert trace(5) != trace(6)


class TestBackgroundInSimulation:
    def test_simulation_with_background_completes(self):
        from repro import ClusterSpec, Simulation
        from repro.schedulers import RandomScheduler
        from repro.workload import JobSpec

        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=RandomScheduler(),
            jobs=[JobSpec.make("01", "grep", 8 * 64 * MB, 8, 3)],
            background=BackgroundSpec(intensity=0.3),
            seed=4,
        )
        result = sim.run()
        assert result.job_completion_times.size == 1
        assert sim.background.flows_issued > 0

    def test_background_slows_jobs_down(self):
        from repro import ClusterSpec, Simulation
        from repro.schedulers import RandomScheduler
        from repro.workload import JobSpec

        def jct(bg):
            sim = Simulation(
                cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
                scheduler=RandomScheduler(),
                jobs=[JobSpec.make("01", "terasort", 16 * 64 * MB, 16, 6)],
                background=bg,
                seed=4,
            )
            return sim.run().mean_jct

        assert jct(BackgroundSpec(intensity=0.6)) > jct(None)
