"""Hadoop-1.x failure recovery: expiry, kills, re-execution, retry budgets.

These tests drive the recovery machinery directly (no FaultInjector): a
"crash" flips ``Node.alive`` and calls the tracker's physical hook, exactly
what the injector does.  Covered: running attempts are killed (uncharged)
at tracker expiry and re-scheduled; completed map outputs that unfinished
reduces still need re-execute with shuffle bytes conserved across the
re-fetch; a crash-and-quick-reboot is detected through the incarnation
number; charged failures exhaust ``max_attempts`` and fail the job;
repeated failures on one node blacklist it for the job and its offers are
declined.  The runtime invariant checker is active throughout (conftest
sets ``REPRO_CHECK_INVARIANTS=1``).
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec
from repro.engine import EngineConfig, Simulation
from repro.schedulers import FairScheduler
from repro.trace.events import NodeDown, NodeUp
from repro.units import MB
from repro.workload import JobSpec


def build(num_maps=6, num_reduces=2, seed=3, block=64 * MB, **knobs):
    spec = JobSpec.make("01", "terasort", num_maps * block, num_maps,
                        num_reduces)
    return Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=FairScheduler(),
        jobs=[spec],
        seed=seed,
        config=EngineConfig(**knobs),
    )


def started(**kw):
    """A running simulation (heartbeats live) frozen just after t=0."""
    sim = build(**kw)
    sim.run(until=1e-9)
    return sim, sim.tracker.active_jobs[0]


def paused(**kw):
    """A simulation that never starts heartbeats — full manual control."""
    sim = build(**kw)
    sim.sim.run(until=1e-9)
    return sim, sim.tracker.active_jobs[0]


def crash(sim, node):
    """What the FaultInjector does physically: die and lose all state."""
    node.alive = False
    node.incarnation += 1
    sim.tracker.on_node_crashed(node)


def step_until(sim, cond, step=0.25, limit=4000):
    for _ in range(limit):
        if cond():
            return True
        sim.sim.run(until=sim.sim.now + step)
    return False


# ----------------------------------------------------------------------
# node loss end to end
# ----------------------------------------------------------------------
class TestNodeLoss:
    def test_running_map_killed_uncharged_and_rescheduled(self):
        sim, job = started(tracker_expiry_interval=6.0)
        assert step_until(sim, lambda: job.running_maps())
        task = job.running_maps()[0]
        dead = task.attempts[0].node
        crash(sim, dead)
        sim.sim.run()
        assert sim.tracker.all_done and job.done
        assert task.failures == 0            # node loss is KILLED, not FAILED
        assert task.past_attempts >= 1
        assert task.node is not dead         # re-ran on a live node
        assert sim.tracker.collector.attempts_killed >= 1
        assert sim.tracker.collector.nodes_lost == 1
        assert dead.running_maps == 0 and dead.running_reduces == 0

    def test_lost_map_output_reexecuted_and_bytes_conserved(self):
        sim, job = started(num_maps=4, block=256 * MB,
                           tracker_expiry_interval=6.0)

        def lost_candidate():
            for m in job.maps:
                if m.done and any(r.needs_map(m.index) for r in job.reduces):
                    return m
            return None

        assert step_until(sim, lambda: lost_candidate() is not None)
        victim = lost_candidate()
        dead = victim.node
        crash(sim, dead)
        sim.sim.run()
        assert sim.tracker.all_done and job.done
        assert sim.tracker.collector.maps_reexecuted >= 1
        assert victim.done and victim.node is not dead
        # every reduce copied each non-empty partition exactly once: aborted
        # transfers were never credited and the re-fetch made them whole
        for r in job.reduces:
            expected = sum(
                float(job.I[j, r.index])
                for j in range(job.num_maps)
                if float(job.I[j, r.index]) > 1e-9
            )
            assert r.shuffled_bytes == pytest.approx(expected)

    def test_running_reduce_rescheduled_after_node_loss(self):
        sim, job = started(num_maps=4, block=256 * MB,
                           tracker_expiry_interval=6.0)
        assert step_until(sim, lambda: job.running_reduces())
        reduce_task = job.running_reduces()[0]
        dead = reduce_task.node
        crash(sim, dead)
        sim.sim.run()
        assert sim.tracker.all_done and job.done
        assert reduce_task.done and reduce_task.node is not dead
        assert reduce_task.past_attempts >= 1
        assert reduce_task.failures == 0
        assert sim.tracker.collector.attempts_killed >= 1

    def test_restart_detected_by_incarnation(self):
        # a long expiry window: only the incarnation check can catch this
        sim, job = started(trace=True, tracker_expiry_interval=300.0)
        assert step_until(sim, lambda: job.running_maps())
        node = job.running_maps()[0].attempts[0].node
        crash(sim, node)
        node.alive = True  # rebooted before a single heartbeat was missed
        sim.sim.run()
        assert sim.tracker.all_done and job.done
        downs = [e for e in sim.recorder.events if isinstance(e, NodeDown)]
        ups = [e for e in sim.recorder.events if isinstance(e, NodeUp)]
        assert [(e.node, e.reason) for e in downs] == [(node.name, "restarted")]
        assert [e.node for e in ups] == [node.name]
        assert sim.tracker.collector.nodes_lost == 1
        assert sim.tracker.collector.nodes_rejoined == 1

    def test_map_input_fails_over_to_live_replica(self):
        sim, job = paused()
        node = sim.cluster.node("r0n0")
        # find a map whose chosen replica is remote from r0n0
        attempt = None
        for task in list(job.pending_maps()):
            task.launch(node)
            if task.attempts[0].source != node.name:
                attempt = task.attempts[0]
                break
        assert attempt is not None, "no remote-input map under this seed"
        src = sim.cluster.node(attempt.source)
        sim.sim.run(until=sim.sim.now + 1.0)  # input flow under way
        crash(sim, src)
        sim.sim.run(until=sim.sim.now + 500.0)
        assert attempt.task.done
        assert attempt.task.node is node

    def test_map_input_polls_until_a_replica_revives(self):
        sim, job = paused(replication=2)
        node = sim.cluster.node("r0n0")
        attempt = None
        for task in list(job.pending_maps()):
            task.launch(node)
            if task.attempts[0].source != node.name:
                attempt = task.attempts[0]
                break
        assert attempt is not None
        sim.sim.run(until=sim.sim.now + 1.0)
        # kill every replica holder: the read has nowhere to go
        holders = []
        while attempt.source is not None:
            holder = sim.cluster.node(attempt.source)
            holders.append(holder)
            crash(sim, holder)
            sim.sim.run(until=sim.sim.now + 0.1)
        sim.sim.run(until=sim.sim.now + 30.0)
        assert not attempt.task.done          # stuck polling, not crashed
        holders[0].alive = True               # one replica comes back
        sim.sim.run(until=sim.sim.now + 500.0)
        assert attempt.task.done


# ----------------------------------------------------------------------
# attempt budgets: KILLED vs FAILED, max_attempts, blacklisting
# ----------------------------------------------------------------------
class TestAttemptBudgets:
    def test_kill_attempt_uncharged_and_slot_released(self):
        sim, job = paused()
        task = job.pending_maps()[0]
        node = sim.cluster.node("r0n0")
        task.launch(node)
        attempt = task.attempts[0]
        task.kill_attempt(attempt)
        assert task in job.pending_maps()
        assert task.failures == 0
        assert task.past_attempts == 1
        assert node.running_maps == 0
        assert sim.tracker.collector.attempts_killed == 1
        task.kill_attempt(attempt)  # already retired: a no-op
        assert task.past_attempts == 1
        assert sim.tracker.collector.attempts_killed == 1

    def test_stale_fail_after_kill_is_noop(self):
        sim, job = paused()
        task = job.pending_maps()[0]
        task.launch(sim.cluster.node("r0n0"))
        attempt = task.attempts[0]
        task.kill_attempt(attempt)
        attempt.fail()  # failure injected before the kill landed
        assert task.failures == 0
        assert sim.tracker.collector.attempts_failed == 0

    def test_stale_fail_after_output_loss_reset_is_noop(self):
        sim, job = paused()
        task = job.pending_maps()[0]
        node = sim.cluster.node("r0n0")
        task.launch(node)
        winner = task.attempts[0]
        sim.sim.run(until=sim.sim.now + 500.0)
        assert task.done
        task.reset_after_output_loss()
        assert task in job.pending_maps()
        winner.fail()  # scheduled against the old execution: must not charge
        assert task.failures == 0
        assert task in job.pending_maps()

    def test_max_attempts_exhaustion_fails_job(self):
        sim, job = paused(max_attempts=2)
        task = job.pending_maps()[0]
        for name in ("r0n0", "r0n1"):
            task.launch(sim.cluster.node(name))
            task.attempts[0].fail()
        assert task.failures == 2
        assert job.failed
        assert job in sim.tracker.failed_jobs
        assert "01" in sim.tracker.collector.failed_jobs
        assert sim.tracker.collector.attempts_failed == 2
        # the abort killed every other task and released every slot
        assert all(
            n.running_maps == 0 and n.running_reduces == 0
            for n in sim.cluster.nodes
        )
        assert sim.tracker.all_done

    def test_blacklisted_node_declined_in_offers(self):
        # enough maps that the backlog outlives the first heartbeat round,
        # so the blacklisted node's own offers meet pending work
        sim, job = started(num_maps=24, max_task_failures_per_tracker=2)
        node = sim.cluster.node("r0n0")
        job.note_node_failure(node.name)
        assert node.name not in job.blacklisted
        job.note_node_failure(node.name)
        assert node.name in job.blacklisted
        assert sim.tracker.collector.blacklistings == 1
        sim.sim.run()
        assert sim.tracker.all_done and job.done
        declines = sim.tracker.collector.decline_reasons
        assert (
            declines["map"]["blacklisted"] + declines["reduce"]["blacklisted"]
        ) >= 1


# ----------------------------------------------------------------------
# heartbeat-loss × tracker-expiry boundary
# ----------------------------------------------------------------------
class _DropHeartbeats:
    """Stands in for the FaultInjector: drop every heartbeat from one
    node while ``dropping`` is set — sustained loss, not a dead node."""

    def __init__(self, target):
        self.target = target
        self.dropping = True

    def heartbeat_dropped(self, node):
        return self.dropping and node.name == self.target

    def on_map_attempt(self, attempt):
        pass

    def on_reduce_attempt(self, attempt):
        pass


class TestHeartbeatExpiryBoundary:
    def test_sustained_loss_expires_exactly_once(self):
        # heartbeats from a *healthy* node stop being delivered; the
        # tracker must expire it once at the boundary, then sit on the
        # ``lost`` flag rather than re-expiring every subsequent miss
        sim, job = started(num_maps=24, tracker_expiry_interval=9.0)
        node = next(n for n in sim.cluster.nodes if n.running_maps > 0)
        drops = _DropHeartbeats(node.name)
        sim.tracker.faults = drops
        c = sim.tracker.collector

        # at just under the expiry interval: misses accumulate, no loss
        sim.sim.run(until=sim.sim.now + 8.5)
        assert c.nodes_lost == 0
        # cross the boundary, then two more intervals of silence: the
        # continued misses must not re-expire the already-lost node
        step_until(sim, lambda: c.nodes_lost == 1)
        sim.sim.run(until=sim.sim.now + 6.0)
        assert c.nodes_lost == 1
        assert node.alive  # the node itself never died
        assert not job.done

        # heartbeats resume: one rejoin, and the run drains normally
        drops.dropping = False
        sim.sim.run()
        assert c.nodes_rejoined == 1
        assert c.nodes_lost == 1  # rejoin did not trigger a second expiry
        assert sim.tracker.all_done and job.done

    def test_expiry_boundary_is_inclusive(self):
        # expiry fires on the first tick where the silence *equals* the
        # interval (Hadoop's >= check), aligned to the heartbeat grid
        sim, job = started(num_maps=24, tracker_expiry_interval=6.0,
                           heartbeat_period=2.0)
        node = next(n for n in sim.cluster.nodes if n.running_maps > 0)
        drops = _DropHeartbeats(node.name)
        sim.tracker.faults = drops
        c = sim.tracker.collector
        start = sim.sim.now
        ok = step_until(sim, lambda: c.nodes_lost == 1, step=0.25)
        assert ok
        assert sim.sim.now - start <= 6.0 + 2.0 + 0.5  # within one period
        drops.dropping = False
        sim.sim.run()
        assert sim.tracker.all_done

    def test_incarnation_bump_kills_stale_attempts_exactly_once(self):
        # crash + reboot entirely inside the expiry window: the tracker
        # never sees a missed heartbeat, but the next delivered one
        # carries a new incarnation — state must be written off once
        sim, job = started(num_maps=24, tracker_expiry_interval=30.0,
                           trace=True)
        node = next(n for n in sim.cluster.nodes if n.running_maps > 0)
        stale_attempts = node.running_maps + node.running_reduces
        crash(sim, node)
        node.alive = True  # rebooted before any heartbeat went missing
        sim.sim.run()
        assert sim.tracker.all_done and job.done

        downs = [e for e in sim.tracker.recorder.events
                 if isinstance(e, NodeDown) and e.node == node.name]
        assert len(downs) == 1  # written off exactly once
        assert downs[0].reason == "restarted"
        assert downs[0].killed_attempts == stale_attempts
        ups = [e for e in sim.tracker.recorder.events
               if isinstance(e, NodeUp) and e.node == node.name]
        assert len(ups) == 1
        assert sim.tracker.collector.nodes_lost == 1
        assert sim.tracker.collector.nodes_rejoined == 1

    def test_expiry_then_reboot_does_not_double_kill(self):
        # the node expires through heartbeat loss, *then* crashes and
        # reboots while lost: re-registration must adopt the new
        # incarnation silently — its state was already written off
        sim, job = started(num_maps=24, tracker_expiry_interval=9.0,
                           trace=True)
        node = next(n for n in sim.cluster.nodes if n.running_maps > 0)
        drops = _DropHeartbeats(node.name)
        sim.tracker.faults = drops
        c = sim.tracker.collector
        step_until(sim, lambda: c.nodes_lost == 1)
        assert c.nodes_lost == 1

        crash(sim, node)   # bump the incarnation while already lost
        node.alive = True
        drops.dropping = False
        sim.sim.run()
        assert sim.tracker.all_done and job.done
        downs = [e for e in sim.tracker.recorder.events
                 if isinstance(e, NodeDown) and e.node == node.name]
        assert len(downs) == 1  # the expiry; no second kill on rejoin
        assert c.nodes_lost == 1
        assert c.nodes_rejoined == 1
