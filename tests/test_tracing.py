"""Tests for the decision-level trace subsystem (repro.trace).

Covers the acceptance criteria of the tracing work: same-seed runs produce
byte-identical JSONL streams, per-reason decline events reconcile exactly
with the collector's ``scheduling_declines`` counter, every ``evaluate``
event carries finite costs and a probability in [0, 1], the Chrome export
is valid trace-event JSON, and the disabled (NullRecorder) path records
nothing.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import ClusterSpec, Simulation, table2_batch
from repro.core import ProbabilisticNetworkAwareScheduler
from repro.engine import EngineConfig
from repro.schedulers import (
    CouplingScheduler,
    FairScheduler,
    LARTSScheduler,
    MatchingScheduler,
)
from repro.trace import (
    DECLINE_REASONS,
    Decline,
    NullRecorder,
    TraceRecorder,
    ascii_timeline,
    chrome_trace,
    events_to_chrome,
    events_to_jsonl,
    jsonl_lines,
    read_jsonl,
    trace_summary,
)
from repro.trace.events import JobSubmit

SCHEDULERS = [
    pytest.param(ProbabilisticNetworkAwareScheduler, id="pna"),
    pytest.param(FairScheduler, id="fair"),
    pytest.param(CouplingScheduler, id="coupling"),
    pytest.param(LARTSScheduler, id="larts"),
    pytest.param(MatchingScheduler, id="matching"),
]


def run_traced(factory, seed=123, **config):
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=factory(),
        jobs=table2_batch("wordcount", scale=0.02)[:4],
        config=EngineConfig(trace=True, **config),
        seed=seed,
    )
    return sim.run()


@pytest.fixture(scope="module")
def pna_result():
    return run_traced(ProbabilisticNetworkAwareScheduler)


class TestRecorder:
    def test_null_recorder_is_default_and_silent(self):
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=ProbabilisticNetworkAwareScheduler(),
            jobs=table2_batch("wordcount", scale=0.02)[:2],
            seed=7,
        )
        assert isinstance(sim.recorder, NullRecorder)
        assert not sim.recorder.enabled
        result = sim.run()
        assert result.trace is None
        # emit on the null recorder is a no-op, not an error
        sim.recorder.emit(JobSubmit(t=0.0, job_id="x"))

    def test_trace_config_attaches_recorder(self, pna_result):
        assert isinstance(pna_result.trace, TraceRecorder)
        assert pna_result.trace.events
        counts = pna_result.trace.counts()
        for expected in ("run_start", "job_submit", "heartbeat", "offer",
                         "assign", "task_start", "task_finish", "job_finish"):
            assert counts[expected] > 0, expected

    def test_events_are_time_ordered_per_emission(self, pna_result):
        times = [ev.t for ev in pna_result.trace.events]
        assert times == sorted(times)

    def test_phase_timings_accumulate_wall_time(self, pna_result):
        timings = pna_result.trace.timings
        assert timings["select_map"] > 0.0
        assert timings["select_reduce"] > 0.0

    def test_explicit_recorder_is_adopted(self):
        rec = TraceRecorder()
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=FairScheduler(),
            jobs=table2_batch("wordcount", scale=0.02)[:2],
            seed=7,
            recorder=rec,
        )
        result = sim.run()
        assert result.trace is rec
        assert rec.events


class TestDeterminism:
    def test_same_seed_byte_identical_jsonl(self):
        r1 = run_traced(ProbabilisticNetworkAwareScheduler, seed=123)
        r2 = run_traced(ProbabilisticNetworkAwareScheduler, seed=123)
        assert jsonl_lines(r1.trace.events) == jsonl_lines(r2.trace.events)

    def test_tracing_does_not_change_the_simulation(self):
        traced = run_traced(ProbabilisticNetworkAwareScheduler, seed=123)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=ProbabilisticNetworkAwareScheduler(),
            jobs=table2_batch("wordcount", scale=0.02)[:4],
            seed=123,
        )
        plain = sim.run()
        assert traced.sim_time == plain.sim_time
        assert traced.bytes_over_fabric == plain.bytes_over_fabric
        assert (
            traced.collector.scheduling_declines
            == plain.collector.scheduling_declines
        )


class TestDeclineAccounting:
    @pytest.mark.parametrize("factory", SCHEDULERS)
    def test_decline_events_sum_to_collector_counter(self, factory):
        result = run_traced(factory)
        declines = [
            ev for ev in result.trace.events if isinstance(ev, Decline)
        ]
        assert len(declines) == result.collector.scheduling_declines
        # and the per-(kind, reason) split agrees bucket by bucket
        assert result.trace.declines_by_reason() == dict(
            result.collector.declines_by_reason()
        )

    @pytest.mark.parametrize("factory", SCHEDULERS)
    def test_reasons_use_canonical_vocabulary(self, factory):
        result = run_traced(factory)
        for ev in result.trace.events:
            if isinstance(ev, Decline):
                assert ev.reason in DECLINE_REASONS
                assert ev.kind in ("map", "reduce")

    def test_assign_events_match_assignment_counter(self, pna_result):
        counts = pna_result.trace.counts()
        assert counts["assign"] == pna_result.collector.scheduling_assignments


class TestEvaluateEvents:
    def test_pna_evaluations_are_finite_probabilities(self, pna_result):
        evaluations = [
            ev for ev in pna_result.trace.events if ev.type == "evaluate"
        ]
        assert evaluations
        for ev in evaluations:
            assert math.isfinite(ev.c_here)
            assert math.isfinite(ev.c_ave)
            assert 0.0 <= ev.p <= 1.0
            assert ev.candidates > 0
            assert ev.task_index >= 0


class TestExporters:
    def test_jsonl_round_trip(self, pna_result, tmp_path):
        path = tmp_path / "run.jsonl"
        n = events_to_jsonl(pna_result.trace.events, str(path))
        assert n == len(pna_result.trace.events)
        loaded = read_jsonl(str(path))
        assert loaded == [ev.to_dict() for ev in pna_result.trace.events]

    def test_jsonl_append_mode(self, pna_result, tmp_path):
        path = tmp_path / "runs.jsonl"
        events_to_jsonl(pna_result.trace.events[:3], str(path), append=True)
        events_to_jsonl(pna_result.trace.events[:2], str(path), append=True)
        assert len(read_jsonl(str(path))) == 5

    def test_trace_jsonl_config_writes_file(self, tmp_path):
        path = tmp_path / "auto.jsonl"
        result = run_traced(FairScheduler, trace_jsonl=str(path))
        loaded = read_jsonl(str(path))
        assert len(loaded) == len(result.trace.events)
        assert loaded[0]["type"] == "run_start"
        assert loaded[0]["scheduler"] == "fair"

    def test_chrome_trace_is_valid_and_structured(self, pna_result, tmp_path):
        path = tmp_path / "run.json"
        events_to_chrome(pna_result.trace.events, str(path))
        with open(path) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        assert events
        phases = {e["ph"] for e in events}
        assert phases >= {"M", "X", "i"}
        # nodes appear as named processes
        process_names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "r0n0" in process_names
        assert "jobtracker" in process_names
        for e in events:
            if e["ph"] == "X":
                assert e["ts"] >= 0.0
                assert e["dur"] >= 0.0

    def test_chrome_trace_accepts_dict_events(self, pna_result):
        dicts = [ev.to_dict() for ev in pna_result.trace.events]
        doc = chrome_trace(dicts)
        assert doc["traceEvents"]


class TestRenderers:
    def test_trace_summary_lists_counts_and_reasons(self, pna_result):
        text = trace_summary(pna_result.trace.events)
        assert "trace events" in text
        assert "assign" in text
        assert "assignments" in text

    def test_ascii_timeline_has_one_row_per_active_node(self, pna_result):
        text = ascii_timeline(pna_result.trace.events)
        lines = text.splitlines()
        assert any(line.startswith("r0n0 ") for line in lines)
        assert "sim time" in text

    def test_renderers_accept_loaded_dicts(self, pna_result, tmp_path):
        path = tmp_path / "run.jsonl"
        events_to_jsonl(pna_result.trace.events, str(path))
        loaded = read_jsonl(str(path))
        assert trace_summary(loaded) == trace_summary(pna_result.trace.events)
        assert ascii_timeline(loaded) == ascii_timeline(pna_result.trace.events)

    def test_empty_timeline_degrades_gracefully(self):
        assert ascii_timeline([]) == "(no task activity)"


class TestRunSummary:
    def test_summary_reports_offer_accounting(self, pna_result):
        text = pna_result.summary()
        assert "slot offers:" in text
        assert "assigned" in text
        assert "speculative launches" in text
        if pna_result.collector.scheduling_declines:
            assert "declines by reason:" in text
