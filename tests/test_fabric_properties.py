"""Property-based tests (hypothesis) for k-ary fat-tree / Clos invariants.

The classic fat-tree facts, checked for every generated even ``k`` and
oversubscription ratio:

* host count is ``k^3 / 4``;
* inter-pod host pairs see ``(k/2)^2`` equal-cost shortest paths and
  intra-pod (different edge switch) pairs see ``k/2``;
* at oversubscription 1 the fabric has full bisection bandwidth — each
  pod's aggregate uplink capacity equals its host capacity;
* the graph is connected, and stays connected after any single fabric
  link failure when ``k >= 4`` (multi-path redundancy).
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.topologies import clos_topology
from repro.units import Gbps

ks = st.sampled_from([2, 4, 6])
oversubs = st.sampled_from([1.0, 2.0, 4.0])


class TestFatTreeInvariants:
    @given(k=ks, oversub=oversubs)
    @settings(max_examples=20, deadline=None)
    def test_host_count_is_k_cubed_over_four(self, k, oversub):
        topo = clos_topology(k, oversubscription=oversub)
        assert topo.num_hosts == k**3 // 4

    @given(k=st.sampled_from([4, 6]))
    @settings(max_examples=10, deadline=None)
    def test_equal_cost_multiplicity(self, k):
        topo = clos_topology(k)
        half = k // 2
        inter = topo.equal_cost_paths(
            "h0_0_0", f"h{k - 1}_{half - 1}_{half - 1}"
        )
        assert len(inter) == half * half
        intra = topo.equal_cost_paths("h0_0_0", f"h0_{half - 1}_0")
        assert len(intra) == half
        # all candidates are genuine simple shortest paths of equal length
        for paths in (inter, intra):
            lengths = {len(p) for p in paths}
            assert len(lengths) == 1

    @given(k=ks)
    @settings(max_examples=10, deadline=None)
    def test_full_bisection_at_oversubscription_one(self, k):
        link = 10.0 * Gbps
        topo = clos_topology(k, oversubscription=1.0, link=link)
        g = topo.graph
        half = k // 2
        for pod in range(k):
            uplinks = sum(
                g.edges[f"agg{pod}_{a}", f"core{a}_{j}"]["capacity"]
                for a in range(half)
                for j in range(half)
            )
            hosts = sum(
                g.edges[f"edge{pod}_{e}", f"h{pod}_{e}_{h}"]["capacity"]
                for e in range(half)
                for h in range(half)
            )
            assert uplinks == hosts

    @given(k=ks, oversub=oversubs)
    @settings(max_examples=15, deadline=None)
    def test_oversubscription_thins_fabric_links(self, k, oversub):
        link = 10.0 * Gbps
        topo = clos_topology(k, oversubscription=oversub, link=link)
        g = topo.graph
        assert g.edges["edge0_0", "h0_0_0"]["capacity"] == link
        assert g.edges["edge0_0", "agg0_0"]["capacity"] == link / oversub

    @given(k=ks, oversub=oversubs)
    @settings(max_examples=15, deadline=None)
    def test_connected_and_every_pair_routable(self, k, oversub):
        topo = clos_topology(k, oversubscription=oversub)
        assert nx.is_connected(topo.graph)
        hosts = topo.hosts
        probe = hosts[:: max(1, len(hosts) // 4)]
        for a in probe:
            for b in probe:
                if a != b:
                    assert topo.route(a, b)

    @given(k=st.sampled_from([4, 6]), seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_single_fabric_link_failure_never_partitions(self, k, seed):
        import random

        topo = clos_topology(k)
        fabric_links = [
            (u, v)
            for u, v in topo.graph.edges()
            if topo.graph.nodes[u].get("kind") != "host"
            and topo.graph.nodes[v].get("kind") != "host"
        ]
        link = random.Random(seed).choice(fabric_links)
        topo.mark_link_down(link)
        assert topo.partitioned_pairs() == 0
        assert len(topo.host_components()) == 1
