"""White-box tests of the Coupling Scheduler's reduce mechanics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation
from repro.schedulers import CouplingScheduler
from repro.units import MB
from repro.workload import JobSpec


def run_until_maps_done(sim, job, max_events=500_000):
    """Advance the engine until every map completed (reduces may be pending)."""
    for _ in range(max_events):
        if job.all_maps_done or not sim.sim.step():
            return


def paused_state(sched=None, *, num_maps=6, num_reduces=4, seed=13):
    sched = sched or CouplingScheduler()
    spec = JobSpec.make("01", "terasort", num_maps * 64 * MB,
                        num_maps, num_reduces)
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=sched,
        jobs=[spec],
        seed=seed,
    )
    sim.sim.run(until=1e-9)  # submission only; heartbeats not started
    return sim, sched, sim.tracker.active_jobs[0]


class TestReduceGate:
    def test_no_reduce_before_map_progress(self):
        sim, sched, job = paused_state()
        node = sim.cluster.nodes[0]
        # zero map progress: ceil(0 * n) = 0 launched allowed
        assert sched.select_reduce(node, job, sim.tracker.ctx) is None

    def test_gate_opens_with_progress(self):
        sim, sched, job = paused_state(num_maps=40, num_reduces=12)
        sim.tracker.start()
        # drive until roughly half the maps completed
        for _ in range(500_000):
            if job.maps_done >= 20 or not sim.sim.step():
                break
        assert not job.done
        allowed = int(np.ceil(job.map_progress(sim.sim.now) * job.num_reduces))
        assert job.launched_reduce_count() <= allowed + 1


class TestCentrality:
    def test_prefers_centrality_node_initially(self):
        # a single-wave of maps plus far more reduces than slots keeps
        # reduces pending after the map phase
        sim, sched, job = paused_state(num_maps=10, num_reduces=12)
        ctx = sim.tracker.ctx
        sim.tracker.start()
        run_until_maps_done(sim, job)
        pending = job.pending_reduces()
        assert job.all_maps_done
        if not pending:
            pytest.skip("engine placed everything already")
        task = pending[0]
        model = sched._models[job.spec.job_id]
        costs = model.reduce_costs(
            np.arange(sim.cluster.num_nodes),
            np.array([task.index]),
            ctx.now,
            estimator=sched.estimator,
        )[:, 0]
        best = int(np.argmin(costs))
        worst = int(np.argmax(costs))
        if costs[best] == costs[worst]:
            pytest.skip("degenerate cost landscape")
        # a fresh offer from the worst node is declined...
        worst_node = sim.cluster.nodes[worst]
        if not job.has_running_reduce_on(worst_node.name):
            sched._first_offer.pop((job.spec.job_id, task.index), None)
            assert sched.select_reduce(worst_node, job, ctx) is None
        # ...while the centrality node is accepted
        best_node = sim.cluster.nodes[best]
        if not job.has_running_reduce_on(best_node.name):
            got = sched.select_reduce(best_node, job, ctx)
            assert got is task

    def test_wait_bound_forces_acceptance(self):
        sim, sched, job = paused_state(
            CouplingScheduler(max_wait_rounds=1.0),
            num_maps=10, num_reduces=12,
        )
        ctx = sim.tracker.ctx
        sim.tracker.start()
        run_until_maps_done(sim, job)
        pending = job.pending_reduces()
        if not pending:
            pytest.skip("no pending reduces left")
        task = pending[0]
        key = (job.spec.job_id, task.index)
        # simulate an old first offer: waited longer than 1 heartbeat round
        sched._first_offer[key] = ctx.now - 100.0
        node = next(
            n for n in sim.cluster.nodes_with_free_reduce_slots()
            if not job.has_running_reduce_on(n.name)
        )
        assert sched.select_reduce(node, job, ctx) is task


class TestMapPeek:
    def test_local_candidate_always_accepted(self):
        sim, sched, job = paused_state()
        ctx = sim.tracker.ctx
        nn = sim.tracker.namenode
        # a node holding a replica of EVERY pending map accepts on any draw
        # sample a few seeds until a universal-replica node exists
        for seed in range(13, 40):
            sim, sched, job = paused_state(seed=seed, num_maps=3)
            ctx = sim.tracker.ctx
            nn = sim.tracker.namenode
            for node in sim.cluster.nodes:
                if all(nn.is_local(m.block, node.name)
                       for m in job.pending_maps()):
                    assert sched.select_map(node, job, ctx) is not None
                    return
        pytest.skip("no universal-replica node across sampled seeds")

    def test_remote_mostly_declined(self):
        """With p_remote = 0, an off-rack node never takes a map."""
        sim, sched, job = paused_state(
            CouplingScheduler(p_rack=0.0, p_remote=0.0)
        )
        ctx = sim.tracker.ctx
        nn = sim.tracker.namenode
        for node in sim.cluster.nodes:
            local_any = any(
                nn.is_local(m.block, node.name) for m in job.pending_maps()
            )
            if not local_any:
                for _ in range(5):
                    task = sched.select_map(node, job, ctx)
                    if task is not None:
                        # sampled a local task? impossible here
                        assert nn.is_local(task.block, node.name)
                return
