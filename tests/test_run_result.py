"""Tests for RunResult views and summary semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation
from repro.schedulers import RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


@pytest.fixture(scope="module")
def result():
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=RandomScheduler(),
        jobs=[
            JobSpec.make("01", "terasort", 8 * 64 * MB, 8, 3),
            JobSpec.make("02", "grep", 6 * 64 * MB, 6, 2),
        ],
        seed=12,
    )
    return sim.run()


class TestRunResultViews:
    def test_jct_array_ordered_by_job_id(self, result):
        times = result.job_completion_times
        assert times.shape == (2,)
        recs = sorted(result.collector.job_records, key=lambda r: r.job_id)
        assert np.allclose(times, [r.completion_time for r in recs])

    def test_mean_jct(self, result):
        assert result.mean_jct == pytest.approx(
            float(result.job_completion_times.mean())
        )

    def test_locality_shares_sum_to_one(self, result):
        shares = result.locality_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        for kind in ("map", "reduce"):
            k = result.locality_shares(kind)
            assert sum(k.values()) == pytest.approx(1.0)

    def test_utilisation_in_unit_interval(self, result):
        for kind in ("map", "reduce"):
            u = result.utilisation(kind)
            assert 0.0 < u <= 1.0

    def test_byte_accounting_consistent(self, result):
        # fabric + local bytes cover at least all task input bytes
        task_bytes = sum(t.bytes_in for t in result.collector.task_records)
        assert result.bytes_over_fabric + result.bytes_local >= task_bytes * 0.99

    def test_summary_is_multiline_readable(self, result):
        text = result.summary()
        assert text.count("\n") >= 3
        assert "jobs completed: 2" in text

    def test_scheduler_name_propagates(self, result):
        assert result.scheduler == "random"
        assert result.seed == 12

    def test_flows_counted(self, result):
        # at least one flow per map input plus shuffle fetches
        assert result.flows >= 14
