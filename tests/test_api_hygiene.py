"""API hygiene: docstrings, __all__ integrity, import graph sanity."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.cluster",
    "repro.hdfs",
    "repro.engine",
    "repro.schedulers",
    "repro.core",
    "repro.workload",
    "repro.metrics",
    "repro.analysis",
    "repro.experiments",
    "repro.yarn",
]


def all_modules():
    mods = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        mods.append(pkg)
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                mods.append(
                    importlib.import_module(f"{pkg_name}.{info.name}")
                )
    return {m.__name__: m for m in mods}.values()


class TestDocstrings:
    @pytest.mark.parametrize("module", all_modules(), ids=lambda m: m.__name__)
    def test_every_module_has_a_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("pkg_name", PACKAGES)
    def test_all_exports_resolve_and_are_documented(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        exported = getattr(pkg, "__all__", [])
        assert exported, f"{pkg_name} should declare __all__"
        for name in exported:
            obj = getattr(pkg, name)  # raises if missing
            if callable(obj) and not isinstance(obj, type(repro)):
                assert obj.__doc__, f"{pkg_name}.{name} lacks a docstring"


class TestPublicSurfaces:
    def test_top_level_exports(self):
        for name in ("Simulation", "ClusterSpec", "JobSpec", "TABLE2",
                     "table2_batch", "MetricsCollector"):
            assert hasattr(repro, name)

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_scheduler_names_unique(self):
        from repro.core import ProbabilisticNetworkAwareScheduler
        from repro.schedulers import (
            CouplingScheduler,
            FairScheduler,
            GreedyCostScheduler,
            LARTSScheduler,
            RandomScheduler,
        )

        names = [
            ProbabilisticNetworkAwareScheduler().name,
            CouplingScheduler().name,
            FairScheduler().name,
            GreedyCostScheduler.name,
            LARTSScheduler().name,
            RandomScheduler.name,
        ]
        assert len(set(names)) == len(names)

    def test_no_circular_import_from_cold_start(self):
        """Importing the deepest modules first must not blow up."""
        import subprocess
        import sys

        code = (
            "import repro.core.scheduler, repro.schedulers.coupling, "
            "repro.engine.simulation, repro.experiments.runner, repro.yarn; "
            "print('ok')"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "ok"
