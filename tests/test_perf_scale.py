"""Scale-PR coverage: batched workloads, the sharded sweep, perf gates.

Three concerns from the 1000-node scaling work live here:

* **trace identity under fabric churn** — the incremental fast paths
  (persistent fabric membership state, gather-min rate matrices,
  running cost vectors) must stay byte-identical to the naive
  ``REPRO_NO_CACHE=1`` reference even while links fail and heal and
  ``route_version`` bumps mid-run (node churn is covered by
  ``tests/test_perf_cache.py``);
* **the sharded sweep** — canonical task identity, shard-independent
  seeding, and merged-JSON byte-identity across worker counts;
* **benchmark gates** — the events/s throughput floor in
  :func:`check_regression`, the xxl batched workload builder, and the
  profile-diff renderer behind ``repro profile --compare``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import EngineConfig, Simulation
from repro.cluster import Cluster, clos_topology
from repro.core import PNAConfig, ProbabilisticNetworkAwareScheduler
from repro.experiments.perf import batched_workload, check_regression
from repro.experiments.scenarios import get_scenario
from repro.experiments.sweep import (
    _task_seeds,
    run_sweep,
    sweep_tasks,
    task_key,
    write_sweep,
)
from repro.faults import FaultPlan, LinkFailure
from repro.obs.profile import compare_docs
from repro.sim import Simulator
from repro.units import MB
from repro.workload import JobSpec


# ---------------------------------------------------------------------------
# cached vs naive byte-identity while the fabric churns
# ---------------------------------------------------------------------------
def _run_fabric_traced(tmp_path, tag):
    """A netcond run on a Clos fabric with a mid-run link fault."""
    trace = tmp_path / f"{tag}.jsonl"
    clock = Simulator()
    cluster = Cluster(clock, clos_topology(4))
    sim = Simulation(
        cluster=cluster,
        scheduler=ProbabilisticNetworkAwareScheduler(
            PNAConfig(network_condition=True)
        ),
        jobs=[
            JobSpec.make("01", "terasort", 16 * 64 * MB, 16, 6),
            JobSpec.make("02", "grep", 8 * 32 * MB, 8, 2),
        ],
        seed=11,
        config=EngineConfig(
            trace_jsonl=str(trace),
            faults=FaultPlan(link_failures=(
                LinkFailure(link=("edge0_0", "agg0_0"), duration=25.0, at=5.0),
                LinkFailure(node="h1_0_0", duration=20.0, at=8.0),
            )),
            route_convergence_delay=0.5,
        ),
    )
    result = sim.run()
    return trace.read_bytes(), result


def test_fabric_fault_trace_identical_with_and_without_caches(
    tmp_path, monkeypatch
):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    cached_bytes, result = _run_fabric_traced(tmp_path, "cached")
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    naive_bytes, _ = _run_fabric_traced(tmp_path, "naive")

    assert cached_bytes, "trace was empty — nothing was compared"
    assert cached_bytes == naive_bytes
    # the fault plan must actually reroute, otherwise route_version never
    # bumps and the incremental paths dodge the scenario under test
    assert result.route_convergences >= 2


# ---------------------------------------------------------------------------
# the xxl batched workload
# ---------------------------------------------------------------------------
class TestBatchedWorkload:
    def test_unique_ids_and_staggered_submits(self):
        specs = batched_workload(70, scale=0.1, stagger=15.0)
        assert len(specs) == 70
        assert len({s.job_id for s in specs}) == 70
        assert [s.submit_time for s in specs[:4]] == [0.0, 15.0, 30.0, 45.0]

    def test_cycles_the_catalogue_with_fresh_seeds(self):
        specs = batched_workload(40)
        # 30 Table II jobs, then the cycle restarts with offset seeds
        assert specs[30].app == specs[0].app
        assert specs[30].num_maps == specs[0].num_maps
        assert specs[30].seed == specs[0].seed + 1000
        assert specs[30].job_id != specs[0].job_id

    def test_deterministic(self):
        assert batched_workload(12) == batched_workload(12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            batched_workload(0)


# ---------------------------------------------------------------------------
# the sharded sweep
# ---------------------------------------------------------------------------
class TestSweep:
    def test_tasks_are_key_sorted_and_unique(self):
        for quick in (False, True):
            tasks = sweep_tasks(quick=quick)
            keys = [task_key(t) for t in tasks]
            assert keys == sorted(keys)
            assert len(set(keys)) == len(keys)

    def test_seeds_are_a_pure_function_of_the_grid(self):
        tasks = sweep_tasks(quick=True)
        assert _task_seeds(tasks, 42) == _task_seeds(tasks, 42)
        assert _task_seeds(tasks, 42) != _task_seeds(tasks, 43)
        # one independent seed per task, no collisions expected here
        assert len(set(_task_seeds(tasks, 42))) == len(tasks)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            run_sweep(jobs=0, quick=True)

    def test_merged_json_byte_identical_across_worker_counts(self, tmp_path):
        scenario = get_scenario("ci").with_(scale=0.02)
        blobs = []
        for jobs in (1, 2):
            doc = run_sweep(jobs=jobs, quick=True, scenario=scenario)
            path = tmp_path / f"sweep_j{jobs}.json"
            write_sweep(doc, str(path))
            blobs.append(path.read_bytes())
        assert blobs[0], "sweep artifact was empty"
        assert blobs[0] == blobs[1]

    def test_records_carry_no_timing_or_process_facts(self, tmp_path):
        scenario = get_scenario("ci").with_(scale=0.02)
        doc = run_sweep(jobs=2, quick=True, scenario=scenario)
        blob = json.dumps(doc)
        for forbidden in ("wall", "pid", "worker", "elapsed"):
            assert forbidden not in blob


# ---------------------------------------------------------------------------
# the events/s regression gate
# ---------------------------------------------------------------------------
def _doc(wall, eps):
    return {"cases": {"c": {"wall_s": wall, "events_per_s": eps}}}


class TestThroughputGate:
    def test_throughput_collapse_fails_even_with_flat_wall(self):
        failures = check_regression(_doc(1.0, 400.0), _doc(1.0, 1000.0))
        assert len(failures) == 1
        assert "events/s" in failures[0]

    def test_within_factor_passes(self):
        assert check_regression(_doc(1.5, 600.0), _doc(1.0, 1000.0)) == []

    def test_missing_throughput_in_baseline_is_ignored(self):
        baseline = {"cases": {"c": {"wall_s": 1.0}}}
        assert check_regression(_doc(1.0, 5.0), baseline) == []

    def test_both_axes_can_fail_together(self):
        failures = check_regression(_doc(3.0, 100.0), _doc(1.0, 1000.0))
        assert len(failures) == 2


# ---------------------------------------------------------------------------
# profile --compare
# ---------------------------------------------------------------------------
class TestCompareDocs:
    A = {
        "format": "repro-profile", "wall_s": 10.0,
        "components": {
            "network.tick": {"self_s": 6.0, "calls": 100},
            "scheduler.select": {"self_s": 2.0, "calls": 50},
        },
    }
    B = {
        "format": "repro-profile", "wall_s": 4.0,
        "components": {
            "network.tick": {"self_s": 1.0, "calls": 100},
            "tracker.heartbeat": {"self_s": 0.5, "calls": 10},
        },
    }

    def test_largest_mover_leads_and_absent_side_is_zero(self):
        table = compare_docs(self.A, self.B)
        lines = table.splitlines()
        assert lines[1].startswith("network.tick")
        # scheduler.select vanished in B; tracker.heartbeat is new
        assert any(l.startswith("scheduler.select") for l in lines)
        assert any(l.startswith("tracker.heartbeat") for l in lines)
        assert "(total wall)" in lines[-1]
        assert "0.40x" in lines[-1]

    def test_top_truncates(self):
        table = compare_docs(self.A, self.B, top=1)
        body = [l for l in table.splitlines()[1:-1]]
        assert len(body) == 1

    def test_zero_baseline_component_renders_dash_ratio(self):
        table = compare_docs({"wall_s": 0.0, "components": {}}, self.B)
        assert "-" in table.splitlines()[-1]


# ---------------------------------------------------------------------------
# the gather-min kernel behind rate_matrix
# ---------------------------------------------------------------------------
def test_gather_min_kernel_matches_numpy():
    from repro import accel

    kern = accel.refill_kernel()
    if kern is None:
        pytest.skip("C kernels unavailable")
    rng = np.random.default_rng(5)
    k, depth = 13, 4
    share = rng.uniform(1.0, 9.0, size=37)
    tensor = rng.integers(0, 37, size=(k, k, depth))
    out = np.empty((k, k))
    rc = kern.gather_min(
        k * k, depth, np.ascontiguousarray(tensor).ctypes.data,
        share.ctypes.data, out.ctypes.data,
    )
    assert rc == 0
    np.testing.assert_array_equal(out, share[tensor].min(axis=2))


def test_gather_min_rejects_empty_rows():
    from repro import accel

    kern = accel.refill_kernel()
    if kern is None:
        pytest.skip("C kernels unavailable")
    buf = np.zeros(1)
    tensor = np.zeros((1, 1, 0), dtype=np.int64)
    assert kern.gather_min(1, 0, tensor.ctypes.data, buf.ctypes.data,
                           buf.ctypes.data) != 0
