"""Tests for the LARTS baseline and the Capacity job-level scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation
from repro.schedulers import (
    CapacityJobScheduler,
    LARTSScheduler,
    RandomScheduler,
)
from repro.units import MB
from repro.workload import JobSpec


def run_small(scheduler, *, job_scheduler=None, num_jobs=3, seed=3):
    jobs = [
        JobSpec.make(f"{i:02d}", "terasort", 8 * 64 * MB, 8, 3)
        for i in range(1, num_jobs + 1)
    ]
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=scheduler,
        jobs=jobs,
        job_scheduler=job_scheduler,
        seed=seed,
    )
    return sim, sim.run()


class TestLARTS:
    def test_completes(self):
        sim, result = run_small(LARTSScheduler())
        assert result.job_completion_times.size == 3

    def test_deterministic(self):
        def fp():
            _, result = run_small(LARTSScheduler())
            return [
                (t.kind, t.index, t.node, round(t.end, 6))
                for t in result.collector.task_records
            ]

        assert fp() == fp()

    def test_reduces_avoid_colocation(self):
        spec = JobSpec.make("01", "terasort", 12 * 64 * MB, 12, 8)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scheduler=LARTSScheduler(),
            jobs=[spec],
            seed=1,
        )
        sim.tracker.start()
        job = None
        while sim.sim.step():
            if job is None and sim.tracker.active_jobs:
                job = sim.tracker.active_jobs[0]
            if job is not None:
                nodes = [r.node.name for r in job.running_reduces()]
                assert len(nodes) == len(set(nodes))

    def test_sweet_spot_is_max_data_node(self):
        sim, _ = run_small(LARTSScheduler(), num_jobs=1)
        # reconstruct: after the run, the sweet spot for any reduce must be
        # the node whose completed maps produced the most of its partition
        job = sim.tracker.finished_jobs[0]
        sched = LARTSScheduler()
        for f in range(job.num_reduces):
            spot = sched._sweet_spot(job, f, sim.tracker.ctx)
            per_node = {}
            for m in job.maps:
                per_node[m.node.name] = per_node.get(m.node.name, 0.0) + job.I[m.index, f]
            assert per_node[spot] == max(per_node.values())

    def test_reduce_placement_cost_beats_random(self):
        """LARTS's sweet-spot placement lowers realised shuffle cost."""

        def reduce_cost(result):
            return sum(
                t.cost for t in result.collector.task_records
                if t.kind == "reduce"
            )

        _, larts = run_small(LARTSScheduler(), seed=9)
        _, rand = run_small(RandomScheduler(), seed=9)
        assert reduce_cost(larts) < reduce_cost(rand)

    def test_invalid_waits(self):
        with pytest.raises(ValueError):
            LARTSScheduler(node_wait=-1.0)
        with pytest.raises(ValueError):
            LARTSScheduler(node_wait=10.0, rack_wait=5.0)


class TestCapacityJobScheduler:
    class FakeJob:
        def __init__(self, jid, submit, running):
            self.submit_time = submit
            self.spec = type("S", (), {"job_id": jid})()
            self._running = running

        def running_maps(self):
            return [None] * self._running

        def running_reduces(self):
            return [None] * self._running

    def test_default_queue(self):
        sched = CapacityJobScheduler()
        job = self.FakeJob("a", 0.0, 0)
        assert sched.queue_of(job) == "default"

    def test_capacities_normalised(self):
        sched = CapacityJobScheduler({"prod": 3.0, "dev": 1.0})
        assert sched.capacities["prod"] == pytest.approx(0.6)
        assert sched.capacities["dev"] == pytest.approx(0.2)
        assert "default" in sched.capacities

    def test_underserved_queue_first(self):
        sched = CapacityJobScheduler(
            {"prod": 0.75, "dev": 0.25},
            assignments={"p1": "prod", "d1": "dev"},
        )
        p1 = self.FakeJob("p1", 0.0, 6)   # prod usage 6 / 0.75 share -> 8
        d1 = self.FakeJob("d1", 1.0, 1)   # dev usage 1 / 0.25 share -> 4
        out = sched.order([p1, d1], "map")
        assert [j.spec.job_id for j in out] == ["d1", "p1"]

    def test_fifo_within_queue(self):
        sched = CapacityJobScheduler(assignments={})
        a = self.FakeJob("a", 5.0, 0)
        b = self.FakeJob("b", 1.0, 0)
        out = sched.order([a, b], "reduce")
        assert [j.spec.job_id for j in out] == ["b", "a"]

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            CapacityJobScheduler({"q": -1.0})
        with pytest.raises(ValueError):
            CapacityJobScheduler({"q": 1.0}, assignments={"j": "nope"})
        with pytest.raises(ValueError):
            CapacityJobScheduler().order([], "shuffle")

    def test_end_to_end(self):
        sched = CapacityJobScheduler(
            {"prod": 0.7, "dev": 0.3},
            assignments={"01": "prod", "02": "dev", "03": "prod"},
        )
        sim, result = run_small(RandomScheduler(), job_scheduler=sched)
        assert result.job_completion_times.size == 3
