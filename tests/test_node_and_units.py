"""Unit tests for Node slot accounting, ClusterSpec, and unit helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec, Node, SlotExhausted
from repro.cluster.topology import rack_topology
from repro.sim import Simulator
from repro.units import (
    GB,
    Gbps,
    KB,
    MB,
    TB,
    fmt_bytes,
    fmt_rate,
    fmt_time,
    gb,
    gbps,
    kb,
    mb,
    mbps,
)


class TestNodeSlots:
    def make(self):
        return Node(name="n0", rack="rack0", map_slots=2, reduce_slots=1)

    def test_initial_slots_free(self):
        n = self.make()
        assert n.free_map_slots == 2
        assert n.free_reduce_slots == 1

    def test_acquire_release_cycle(self):
        n = self.make()
        n.acquire_map_slot()
        n.acquire_map_slot()
        assert n.free_map_slots == 0
        n.release_map_slot()
        assert n.free_map_slots == 1

    def test_over_acquire_raises(self):
        n = self.make()
        n.acquire_map_slot()
        n.acquire_map_slot()
        with pytest.raises(SlotExhausted):
            n.acquire_map_slot()

    def test_over_release_raises(self):
        n = self.make()
        with pytest.raises(SlotExhausted):
            n.release_map_slot()
        with pytest.raises(SlotExhausted):
            n.release_reduce_slot()

    def test_reduce_slots_independent(self):
        n = self.make()
        n.acquire_reduce_slot()
        assert n.free_reduce_slots == 0
        assert n.free_map_slots == 2
        with pytest.raises(SlotExhausted):
            n.acquire_reduce_slot()


class TestClusterSpec:
    def test_default_matches_paper(self):
        spec = ClusterSpec()
        assert spec.num_nodes == 60
        assert spec.map_slots == 4
        assert spec.reduce_slots == 2

    def test_build(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=3).build(sim)
        assert cluster.num_nodes == 6
        assert cluster.total_map_slots() == 24
        assert cluster.total_reduce_slots() == 12

    def test_node_lookup(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=2).build(sim)
        node = cluster.node("r1n0")
        assert node.rack == "rack1"
        assert "r1n0" in cluster
        assert "missing" not in cluster
        assert len(cluster) == 4
        assert {n.name for n in cluster} == {"r0n0", "r0n1", "r1n0", "r1n1"}

    def test_compute_factors(self):
        sim = Simulator()
        cluster = ClusterSpec(
            num_racks=1, nodes_per_rack=2, compute_factors=[1.0, 2.0]
        ).build(sim)
        assert cluster.nodes[1].compute_factor == 2.0

    def test_compute_factor_length_mismatch(self):
        sim = Simulator()
        topo = rack_topology(1, 3)
        with pytest.raises(ValueError):
            Cluster(sim, topo, compute_factors=[1.0])

    def test_free_slot_views(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=1, nodes_per_rack=2).build(sim)
        assert len(cluster.nodes_with_free_map_slots()) == 2
        cluster.nodes[0].running_maps = cluster.nodes[0].map_slots
        assert len(cluster.nodes_with_free_map_slots()) == 1
        assert cluster.running_map_tasks() == 4

    def test_hop_matrix_view(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=2).build(sim)
        h = cluster.hop_matrix
        assert h.shape == (4, 4)
        assert cluster.distance("r0n0", "r0n1") == 2.0
        assert cluster.distance("r0n0", "r1n0") == 4.0

    def test_inverse_rate_matrix_idle(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=2).build(sim)
        inv = cluster.inverse_rate_matrix()
        assert np.all(np.diag(inv) == 0.0)
        # idle same-rack path normalises to the 2-hop reference
        i, j = cluster.node("r0n0").index, cluster.node("r0n1").index
        assert inv[i, j] == pytest.approx(2.0)
        # cross-rack path bottlenecked by the same host link when idle
        k = cluster.node("r1n0").index
        assert inv[i, k] == pytest.approx(2.0)

    def test_inverse_rate_matrix_reacts_to_load(self):
        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=2).build(sim)
        i, j = cluster.node("r0n0").index, cluster.node("r0n1").index
        before = cluster.inverse_rate_matrix()[i, j]
        cluster.network.start_flow("r0n0", "r0n1", 1 * GB)
        sim.run(until=0.001)
        after = cluster.inverse_rate_matrix()[i, j]
        assert after > before


class TestUnits:
    def test_byte_units(self):
        assert kb(1) == KB == 1024
        assert mb(1) == MB
        assert gb(2) == 2 * GB
        assert TB == 1024 * GB

    def test_rate_units(self):
        assert gbps(1) == Gbps == 1e9 / 8
        assert mbps(8) == 1e6

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2 * KB) == "2.00 KB"
        assert fmt_bytes(1.5 * GB) == "1.50 GB"
        assert fmt_bytes(2 * TB) == "2.00 TB"

    def test_fmt_rate(self):
        assert fmt_rate(Gbps) == "1.00 Gbps"
        assert fmt_rate(125.0) == "1.00 Kbps"
        assert fmt_rate(12.5) == "100 bps"

    def test_fmt_time(self):
        assert fmt_time(30.0) == "30.00 s"
        assert fmt_time(90.0) == "1.50 min"
        assert fmt_time(7200.0) == "2.00 h"
