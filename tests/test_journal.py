"""Write-ahead journal and JobTracker restart tests.

Unit half: ``Journal`` append/rebuild/reconcile semantics (``map_lost``
undoes ``map_done`` in order, kind vocabulary is closed, reconciliation
names every discrepancy).  Integration half: a ``TrackerCrash`` fault
mid-run — heartbeats are declined ``tracker_down`` during the outage,
the restart resyncs the journal from engine state (the stand-in for
TaskTracker status reports), jobs submitted during the outage are
deferred and replayed, no attempt is orphaned, and runs with the journal
enabled but no crash stay byte-identical to runs without it.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec
from repro.engine import EngineConfig, Journal, JournalEntry, Simulation
from repro.engine.task import TaskState
from repro.faults import FaultPlan, TrackerCrash
from repro.schedulers import FairScheduler
from repro.trace import jsonl_lines
from repro.units import MB
from repro.workload import JobSpec


def jobs(n=4, num_maps=6, **kwargs):
    return [
        JobSpec.make(f"{i:02d}", "wordcount", num_maps * 64 * MB, num_maps, 2,
                     **kwargs)
        for i in range(1, n + 1)
    ]


def run(specs=None, plan=None, seed=7, **knobs):
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=FairScheduler(),
        jobs=specs if specs is not None else jobs(),
        seed=seed,
        config=EngineConfig(faults=plan, check_invariants=True, **knobs),
    )
    return sim, sim.run()


# ----------------------------------------------------------------------
# unit: journal mechanics
# ----------------------------------------------------------------------
class TestJournalMechanics:
    def test_entry_kind_vocabulary_is_closed(self):
        JournalEntry(0.0, "map_done", "01", 3)
        with pytest.raises(ValueError):
            JournalEntry(0.0, "map_finished", "01", 3)

    def test_rebuild_replays_in_order(self):
        j = Journal()
        j.append(0.0, "job_submitted", "01")
        j.append(1.0, "map_done", "01", 0)
        j.append(2.0, "map_done", "01", 1)
        j.append(3.0, "map_lost", "01", 0)   # node died, output gone
        j.append(4.0, "map_done", "01", 0)   # re-executed
        j.append(5.0, "reduce_done", "01", 0)
        j.append(6.0, "job_finished", "01")
        state = j.rebuild()["01"]
        assert state.maps_done == {0, 1}
        assert state.reduces_done == {0}
        assert state.finished and not state.failed

    def test_map_lost_without_redo_stays_lost(self):
        j = Journal()
        j.append(1.0, "map_done", "01", 0)
        j.append(2.0, "map_lost", "01", 0)
        assert j.rebuild()["01"].maps_done == set()

    def test_resync_counter(self):
        j = Journal()
        j.append(0.0, "map_done", "01", 0)
        j.append(1.0, "map_done", "01", 1, resync=True)
        assert len(j) == 2
        assert j.resynced_entries == 1


# ----------------------------------------------------------------------
# integration: tracker crash and restart
# ----------------------------------------------------------------------
def crash_plan(at=10.0, down_for=40.0):
    return FaultPlan(tracker_crashes=(TrackerCrash(at=at, down_for=down_for),))


class TestTrackerRestart:
    def test_run_completes_through_a_tracker_crash(self):
        sim, result = run(plan=crash_plan(), trace=True)
        c = result.collector
        assert sim.tracker.all_done
        assert not c.failed_jobs
        assert c.tracker_crashes == 1
        assert c.tracker_restarts == 1

    def test_outage_declines_and_trace_events(self):
        sim, result = run(plan=crash_plan(), trace=True)
        lines = jsonl_lines(result.trace.events)
        downs = [l for l in lines if '"type":"tracker_down"' in l]
        ups = [l for l in lines if '"type":"tracker_up"' in l]
        assert len(downs) == 1 and len(ups) == 1
        # every heartbeat with free slots during the outage is declined
        declined = result.collector.declines_by_reason()
        assert declined.get(("map", "tracker_down"), 0) > 0

    def test_restart_resyncs_outage_completions(self):
        # work owned by TaskTrackers continues during the outage, so the
        # journal must be behind at restart and resync must repair it
        sim, result = run(plan=crash_plan(), trace=True)
        journal = sim.tracker.journal
        assert journal is not None
        assert journal.resynced_entries > 0
        assert journal.reconcile(sim.tracker) == []

    def test_no_orphaned_attempts_after_restart(self):
        sim, _ = run(plan=crash_plan())
        for job in sim.tracker.all_jobs():
            for task in (*job.maps, *job.reduces):
                assert task.state is not TaskState.RUNNING

    def test_submission_during_outage_is_deferred_and_replayed(self):
        specs = jobs(2) + [
            JobSpec.make("late", "wordcount", 6 * 64 * MB, 6, 2,
                         submit_time=25.0)  # inside the 10–50 s outage
        ]
        sim, result = run(specs=specs, plan=crash_plan(10.0, 40.0), trace=True)
        assert sim.tracker.all_done
        assert result.collector.job_completion_times().size == 3
        # the deferred job shows up in the tracker_up event
        line = next(
            l for l in jsonl_lines(result.trace.events)
            if '"type":"tracker_up"' in l
        )
        assert '"deferred_jobs":1' in line

    def test_back_to_back_crashes(self):
        plan = FaultPlan(tracker_crashes=(
            TrackerCrash(at=10.0, down_for=5.0),
            TrackerCrash(at=25.0, down_for=5.0),
        ))
        sim, result = run(plan=plan)
        assert sim.tracker.all_done
        assert result.collector.tracker_crashes == 2
        assert result.collector.tracker_restarts == 2

    def test_journal_disabled_without_crash_or_flag(self):
        sim, _ = run()
        assert sim.tracker.journal is None

    def test_journal_flag_without_crashes_reconciles(self):
        sim, _ = run(journal=True)
        journal = sim.tracker.journal
        assert journal is not None
        assert journal.resynced_entries == 0
        assert journal.reconcile(sim.tracker) == []
        kinds = {e.kind for e in journal.entries}
        assert "job_submitted" in kinds and "job_finished" in kinds


# ----------------------------------------------------------------------
# determinism: the journal is pure bookkeeping
# ----------------------------------------------------------------------
class TestJournalPerturbation:
    def test_journal_enabled_run_is_byte_identical(self):
        _, base = run(trace=True)
        _, journaled = run(trace=True, journal=True)
        assert jsonl_lines(base.trace.events) == \
            jsonl_lines(journaled.trace.events)

    def test_crash_run_is_seed_reproducible(self):
        _, a = run(plan=crash_plan(), trace=True)
        _, b = run(plan=crash_plan(), trace=True)
        assert jsonl_lines(a.trace.events) == jsonl_lines(b.trace.events)
