"""Focused tests for JobTracker mechanics (heartbeats, offers, lifecycle)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import EngineConfig, Simulation
from repro.schedulers import FIFOJobScheduler, RandomScheduler, TaskScheduler
from repro.units import MB
from repro.workload import JobSpec


def make_sim(jobs=None, scheduler=None, config=None, job_scheduler=None, seed=4):
    jobs = jobs or [JobSpec.make("01", "grep", 6 * 64 * MB, 6, 2)]
    return Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=scheduler or RandomScheduler(),
        jobs=jobs,
        config=config,
        job_scheduler=job_scheduler,
        seed=seed,
    )


class TestHeartbeats:
    def test_staggered_across_period(self):
        sim = make_sim()
        beats = []

        original = sim.tracker.on_heartbeat

        def spy(node):
            beats.append((sim.sim.now, node.name))
            original(node)

        sim.tracker.on_heartbeat = spy
        sim.tracker.start()
        sim.sim.run(until=2.99)
        times = [t for t, _ in beats]
        # 6 nodes over a 3 s period: one heartbeat every 0.5 s
        assert len(times) == 6
        assert times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0, 2.5])

    def test_heartbeats_stop_after_completion(self):
        sim = make_sim()
        result = sim.run()
        # after the run, the event queue has fully drained
        assert sim.sim.pending == 0
        assert sim.tracker.all_done

    def test_double_start_rejected(self):
        sim = make_sim()
        sim.tracker.start()
        with pytest.raises(RuntimeError):
            sim.tracker.start()


class TestSubmission:
    def test_future_submission_creates_job_later(self):
        spec = JobSpec.make("01", "grep", 4 * 64 * MB, 4, 2, submit_time=100.0)
        sim = make_sim(jobs=[spec])
        sim.tracker.start()
        sim.sim.run(until=50.0)
        assert not sim.tracker.active_jobs
        sim.sim.run(until=150.0)
        assert len(sim.tracker.active_jobs) + len(sim.tracker.finished_jobs) == 1

    def test_collector_tracks_submission_time(self):
        spec = JobSpec.make("01", "grep", 4 * 64 * MB, 4, 2, submit_time=30.0)
        sim = make_sim(jobs=[spec])
        result = sim.run()
        assert result.collector.submitted["01"] == 30.0
        (rec,) = result.collector.job_records
        assert rec.submit == 30.0


class TestOfferValidation:
    def test_scheduler_returning_foreign_task_rejected(self):
        class EvilScheduler(RandomScheduler):
            name = "evil"

            def select_map(self, node, job, ctx):
                other = ctx.tracker.active_jobs[-1]
                if other is not job and other.pending_maps():
                    return other.pending_maps()[0]  # task of the wrong job
                return super().select_map(node, job, ctx)

        jobs = [
            JobSpec.make("01", "grep", 4 * 64 * MB, 4, 2),
            JobSpec.make("02", "grep", 4 * 64 * MB, 4, 2),
        ]
        sim = make_sim(jobs=jobs, scheduler=EvilScheduler())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_scheduler_returning_assigned_task_rejected(self):
        class StickyScheduler(RandomScheduler):
            name = "sticky"

            def __init__(self):
                self.last = None

            def select_map(self, node, job, ctx):
                if self.last is not None and not self.last.done:
                    return self.last
                self.last = super().select_map(node, job, ctx)
                return self.last

        sim = make_sim(scheduler=StickyScheduler())
        with pytest.raises(RuntimeError):
            sim.run()


class TestOfferAccounting:
    def test_assignment_counts_match_task_count(self):
        sim = make_sim()
        result = sim.run()
        # every task consumed exactly one accepted offer (no speculation)
        assert result.collector.scheduling_assignments == len(
            result.collector.task_records
        )

    def test_declining_scheduler_counts_declines(self):
        class ShyScheduler(RandomScheduler):
            name = "shy"

            def __init__(self):
                self.count = 0

            def select_map(self, node, job, ctx):
                self.count += 1
                if self.count % 2 == 0:
                    return None  # decline every other offer
                return super().select_map(node, job, ctx)

        sim = make_sim(scheduler=ShyScheduler())
        result = sim.run()
        assert result.collector.scheduling_declines > 0
        assert sim.tracker.all_done


class TestJobOrderingIntegration:
    def test_fifo_gives_head_job_priority(self):
        """Under FIFO, the first job's maps all start no later than the
        moment the second job gets its first slot beyond capacity."""
        jobs = [
            JobSpec.make("01", "grep", 20 * 64 * MB, 20, 2, submit_time=0.0),
            JobSpec.make("02", "grep", 20 * 64 * MB, 20, 2, submit_time=0.0),
        ]
        sim = make_sim(jobs=jobs, job_scheduler=FIFOJobScheduler())
        result = sim.run()
        starts = {"01": [], "02": []}
        for t in result.collector.task_records:
            if t.kind == "map":
                starts[t.job_id].append(t.start)
        # job 01 monopolises early slots: its median start precedes job 02's
        assert np.median(starts["01"]) <= np.median(starts["02"])
