"""Determinism regression: same seed ⇒ byte-identical run metrics.

Every figure in the paper compares schedulers under a common seed, which is
only sound if a run is a pure function of ``(scenario, scheduler, seed)``.
Two independently constructed simulations with equal seeds must therefore
agree on every collected metric, for each scheduler family — including the
job-level Capacity scheduler combination.  The static side of this
guarantee is enforced by ``repro lint`` (global-rng / unseeded-rng /
hidden-seed); this is the dynamic side.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ClusterSpec, Simulation, table2_batch
from repro.core import ProbabilisticNetworkAwareScheduler
from repro.schedulers import (
    CapacityJobScheduler,
    CouplingScheduler,
    FairScheduler,
)

SCHEDULERS = [
    pytest.param(ProbabilisticNetworkAwareScheduler, None, id="pna"),
    pytest.param(FairScheduler, None, id="fair"),
    pytest.param(CouplingScheduler, None, id="coupling"),
    pytest.param(FairScheduler, CapacityJobScheduler, id="fair+capacity"),
]


def run_once(task_factory, job_factory, seed):
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=task_factory(),
        jobs=table2_batch("wordcount", scale=0.02)[:4],
        job_scheduler=job_factory() if job_factory is not None else None,
        seed=seed,
    )
    return sim.run()


@pytest.mark.parametrize("task_factory,job_factory", SCHEDULERS)
def test_same_seed_identical_metrics(task_factory, job_factory):
    r1 = run_once(task_factory, job_factory, seed=123)
    r2 = run_once(task_factory, job_factory, seed=123)

    assert np.array_equal(r1.job_completion_times, r2.job_completion_times)
    assert r1.sim_time == r2.sim_time
    assert r1.bytes_over_fabric == r2.bytes_over_fabric
    assert r1.bytes_local == r2.bytes_local
    assert r1.flows == r2.flows
    assert r1.locality_shares() == r2.locality_shares()
    assert r1.locality_shares("map") == r2.locality_shares("map")
    assert r1.summary() == r2.summary()


def test_different_seeds_change_the_run():
    """Sanity check that the seed actually reaches the stochastic parts."""
    r1 = run_once(ProbabilisticNetworkAwareScheduler, None, seed=123)
    r2 = run_once(ProbabilisticNetworkAwareScheduler, None, seed=456)
    assert (
        not np.array_equal(r1.job_completion_times, r2.job_completion_times)
        or r1.bytes_over_fabric != r2.bytes_over_fabric
        or r1.sim_time != r2.sim_time
    )
