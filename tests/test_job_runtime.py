"""Unit tests for the runtime Job object (repro.engine.job)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation, TaskState
from repro.schedulers import RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


def fresh_job(num_maps=6, num_reduces=4, seed=3, noise=0.0):
    spec = JobSpec.make(
        "01", "wordcount", num_maps * 64 * MB, num_maps, num_reduces,
        noise_sigma=noise,
    )
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=RandomScheduler(),
        jobs=[spec],
        seed=seed,
    )
    sim.tracker.start()
    sim.sim.run(until=1e-9)
    return sim, sim.tracker.active_jobs[0]


class TestMaterialisation:
    def test_one_block_per_map(self):
        _, job = fresh_job(num_maps=7)
        assert job.file.num_blocks == 7
        assert len(job.maps) == 7
        for m, b in zip(job.maps, job.file.blocks):
            assert m.block is b

    def test_intermediate_matrix_shape_and_total(self):
        _, job = fresh_job(num_maps=5, num_reduces=3)
        assert job.I.shape == (5, 3)
        # wordcount emits 2x its input
        assert job.I.sum() == pytest.approx(job.spec.input_size * 2.0)

    def test_weights_sum_to_one(self):
        _, job = fresh_job(num_reduces=9)
        assert job.weights.sum() == pytest.approx(1.0)

    def test_same_seed_same_data(self):
        _, j1 = fresh_job(seed=5)
        _, j2 = fresh_job(seed=5)
        assert np.array_equal(j1.I, j2.I)
        assert [b.replicas for b in j1.file.blocks] == [
            b.replicas for b in j2.file.blocks
        ]

    def test_different_seed_different_data(self):
        _, j1 = fresh_job(seed=5)
        _, j2 = fresh_job(seed=6)
        assert [b.replicas for b in j1.file.blocks] != [
            b.replicas for b in j2.file.blocks
        ]

    def test_noise_changes_matrix_but_not_shape(self):
        _, j1 = fresh_job(noise=0.0)
        _, j2 = fresh_job(noise=0.4)
        assert j1.I.shape == j2.I.shape
        assert not np.allclose(j1.I, j2.I)


class TestProgressViews:
    def test_completion_fraction_tracks_done_maps(self):
        sim, job = fresh_job()
        assert job.map_completion_fraction == 0.0
        sim.sim.run(until=60.0)
        if not job.all_maps_done:
            assert 0 < job.map_completion_fraction < 1
        expected = job.maps_done / job.num_maps
        assert job.map_completion_fraction == expected

    def test_map_progress_between_zero_and_one(self):
        sim, job = fresh_job()
        sim.sim.run(until=5.0)
        assert 0.0 <= job.map_progress(sim.sim.now) <= 1.0

    def test_pending_started_partition(self):
        sim, job = fresh_job()
        sim.sim.run(until=5.0)
        pending = {m.index for m in job.pending_maps()}
        started = {m.index for m in job.started_maps()}
        assert pending | started == set(range(job.num_maps))
        assert pending & started == set()

    def test_record_requires_finish(self):
        _, job = fresh_job()
        with pytest.raises(RuntimeError):
            job.record()


class TestListeners:
    def test_placed_and_done_hooks_fire(self):
        sim, job = fresh_job(num_maps=4, num_reduces=2)
        placed, done = [], []
        job.map_placed_listeners.append(lambda t: placed.append(t.index))
        job.map_done_listeners.append(lambda t: done.append(t.index))
        sim.sim.run()
        # the hooks saw the maps that launched after registration (node 0's
        # heartbeat may already have placed one before)
        assert set(done) | {m.index for m in job.maps if m.index not in done} \
            == set(range(4))
        assert len(done) >= 3
        assert set(placed) <= set(range(4))

    def test_done_fires_after_placed_per_task(self):
        sim, job = fresh_job(num_maps=4, num_reduces=2)
        order = []
        job.map_placed_listeners.append(lambda t: order.append(("p", t.index)))
        job.map_done_listeners.append(lambda t: order.append(("d", t.index)))
        sim.sim.run()
        for idx in {i for k, i in order if k == "d"}:
            events = [k for k, i in order if i == idx]
            if "p" in events:
                assert events.index("p") < events.index("d")


class TestRunResultViews:
    def test_summary_mentions_key_stats(self):
        sim, job = fresh_job()
        # run to completion via the tracker loop
        sim.sim.run()
        from repro.engine.simulation import RunResult

        result = RunResult(
            scheduler="random",
            seed=3,
            collector=sim.tracker.collector,
            sim_time=sim.sim.now,
            bytes_over_fabric=sim.cluster.network.bytes_transferred,
            bytes_local=sim.cluster.network.bytes_local,
            flows=sim.cluster.network.flows_started,
            map_slots=sim.cluster.total_map_slots(),
            reduce_slots=sim.cluster.total_reduce_slots(),
        )
        text = result.summary()
        assert "scheduler=random" in text
        assert "locality" in text
        assert "job completion time" in text
