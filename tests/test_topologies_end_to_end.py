"""End-to-end simulations on non-default topologies (fat-tree, matrix).

``Simulation`` accepts a prebuilt :class:`~repro.cluster.Cluster` (adopting
its clock), which is how custom topologies plug in.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, FlowNetwork, fat_tree_topology, paper_example_topology
from repro.core import ProbabilisticNetworkAwareScheduler
from repro.engine import Simulation
from repro.schedulers import FairScheduler, RandomScheduler
from repro.sim import Simulator
from repro.units import MB
from repro.workload import JobSpec


def build_simulation(topology_factory, scheduler, *, jobs=None, seed=6):
    clock = Simulator()
    cluster = Cluster(clock, topology_factory())
    jobs = jobs or [JobSpec.make("01", "terasort", 8 * 64 * MB, 8, 4)]
    return Simulation(cluster=cluster, scheduler=scheduler, jobs=jobs, seed=seed)


class TestFatTree:
    def test_job_completes_on_fat_tree(self):
        sim = build_simulation(
            lambda: fat_tree_topology(4),
            ProbabilisticNetworkAwareScheduler(),
        )
        result = sim.run()
        assert result.job_completion_times.size == 1
        assert sim.tracker.all_done

    def test_pna_on_fat_tree_has_locality(self):
        sim = build_simulation(
            lambda: fat_tree_topology(4),
            ProbabilisticNetworkAwareScheduler(),
            jobs=[JobSpec.make("01", "terasort", 32 * 64 * MB, 32, 8)],
        )
        result = sim.run()
        assert result.locality_shares("map")["node"] > 0.3

    def test_fair_on_fat_tree(self):
        sim = build_simulation(lambda: fat_tree_topology(4), FairScheduler())
        sim.run()
        assert sim.tracker.all_done

    def test_adopted_cluster_shares_clock(self):
        clock = Simulator()
        cluster = Cluster(clock, fat_tree_topology(4))
        sim = Simulation(
            cluster=cluster,
            scheduler=RandomScheduler(),
            jobs=[JobSpec.make("01", "grep", 4 * 32 * MB, 4, 2)],
        )
        assert sim.sim is clock


class TestPaperExampleTopology:
    def test_simulation_on_matrix_topology(self):
        sim = build_simulation(
            paper_example_topology,
            RandomScheduler(),
            jobs=[JobSpec.make("01", "grep", 4 * 32 * MB, 4, 2)],
        )
        result = sim.run()
        assert sim.tracker.all_done
        nodes = {t.node for t in result.collector.task_records}
        assert nodes <= {"D1", "D2", "D3", "D4"}

    def test_transfer_duration_scales_with_matrix_distance(self):
        """On the matrix topology, pipe capacity decays with hop count, so
        a transfer between far nodes takes longer."""
        clock = Simulator()
        topo = paper_example_topology()
        net = FlowNetwork(clock, topo)
        ends = {}
        net.start_flow("D1", "D3", 100 * MB,
                       lambda f: ends.setdefault("near", clock.now))   # 2 hops
        net.start_flow("D2", "D3", 100 * MB,
                       lambda f: ends.setdefault("far", clock.now))    # 10 hops
        clock.run()
        assert ends["far"] > ends["near"]
