"""No-progress watchdog tests: StallError detection and diagnostics.

A simulation that livelocks — events firing forever without the clock
advancing — used to spin silently until the event budget ran out.  The
watchdog (``Simulator.run(max_stall_iters=...)``, surfaced as
``EngineConfig.max_stall_iters`` and ``repro run --max-stall-iters``)
aborts such runs with a :class:`StallError` carrying a diagnostic dump:
the stuck event, the queue head, and whatever the engine's
``stall_diagnostics`` hook reports about in-flight work.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec
from repro.engine import EngineConfig, Simulation
from repro.schedulers import FairScheduler
from repro.sim import Simulator, StallError
from repro.units import MB
from repro.workload import JobSpec


def livelock(sim):
    """A zero-delay self-rescheduling callback: fires forever at one t."""
    def spin():
        sim.schedule(0.0, spin)
    sim.schedule(0.0, spin)


class TestSimulatorWatchdog:
    def test_stall_raises(self):
        sim = Simulator()
        livelock(sim)
        with pytest.raises(StallError):
            sim.run(max_stall_iters=100)

    def test_stall_not_triggered_by_progress(self):
        sim = Simulator()
        ticks = []
        task = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=500.0, max_stall_iters=100)
        task.stop()
        assert len(ticks) == 501  # start=0 through t=500

    def test_disabled_by_default(self):
        sim = Simulator()
        livelock(sim)
        # without the watchdog the only brake is the event budget
        processed = sim.run(max_events=5000)
        assert processed == 5000

    def test_counter_resets_when_clock_advances(self):
        # 60 zero-delay events at each of several times: under the
        # threshold per timestamp, so no stall — the counter must reset
        # on every clock advance, not accumulate across timestamps
        sim = Simulator()
        for t in (0.0, 1.0, 2.0, 3.0):
            for _ in range(60):
                sim.at(t, lambda: None)
        sim.run(max_stall_iters=100)
        assert sim.now == 3.0

    def test_diagnostic_dump_contents(self):
        sim = Simulator()
        livelock(sim)
        sim.at(10.0, lambda: None)  # a future event for the queue head
        with pytest.raises(StallError) as exc_info:
            sim.run(max_stall_iters=50)
        msg = str(exc_info.value)
        assert "no-progress watchdog: 50 consecutive events" in msg
        assert "current event:" in msg
        assert "queue head:" in msg
        assert "t=10" in msg  # the pending future event is listed

    def test_custom_diagnostics_hook(self):
        sim = Simulator()
        sim.stall_diagnostics = lambda: "in flight: 3 fetches"
        livelock(sim)
        with pytest.raises(StallError, match="in flight: 3 fetches"):
            sim.run(max_stall_iters=50)

    def test_failing_diagnostics_hook_does_not_mask_the_stall(self):
        sim = Simulator()
        sim.stall_diagnostics = lambda: 1 / 0
        livelock(sim)
        with pytest.raises(StallError, match="stall_diagnostics failed"):
            sim.run(max_stall_iters=50)

    def test_stall_error_is_a_simulation_error(self):
        from repro.sim.events import SimulationError

        assert issubclass(StallError, SimulationError)


class TestEngineWatchdog:
    def run(self, **knobs):
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=2),
            scheduler=FairScheduler(),
            jobs=[JobSpec.make("01", "wordcount", 128 * MB, 2, 1)],
            seed=3,
            config=EngineConfig(**knobs),
        )
        return sim, sim.run()

    def test_healthy_run_passes_under_default_watchdog(self):
        sim, result = self.run()
        assert sim.tracker.all_done

    def test_config_validates_max_stall_iters(self):
        with pytest.raises(ValueError):
            EngineConfig(max_stall_iters=-1)
        with pytest.raises(ValueError):
            EngineConfig(max_stall_iters=1.5)
        EngineConfig(max_stall_iters=0)  # 0 disables the watchdog

    def test_engine_wires_stall_diagnostics(self):
        # the engine attaches a diagnostics hook describing in-flight work
        sim, _ = self.run()
        assert sim.sim.stall_diagnostics is not None
        text = sim.sim.stall_diagnostics()
        assert "engine state:" in text
        assert "live flows:" in text


def test_cli_rejects_negative_max_stall_iters(capsys):
    from repro.cli import main

    code = main(["run", "--max-stall-iters", "-1"])
    assert code == 2
    assert "--max-stall-iters" in capsys.readouterr().err


def test_cli_accepts_max_stall_iters(capsys):
    from repro.cli import main

    code = main([
        "run", "--scenario", "ci", "--jobs", "1",
        "--max-stall-iters", "50000",
    ])
    assert code == 0
    assert "makespan" in capsys.readouterr().out
