"""Chaos soak harness tests — generator properties and a CI-scale soak.

The soak itself (``repro chaos``) asserts completion, byte conservation,
trace/collector reconciliation and determinism inside every run; these
tests pin the harness around it: plans are survivable by construction
(every crash revives, no charged task failures), intensity 0 is the
empty plan, plan generation is seed-stable, a forced tracker-crash round
completes under every scheduler family, and the CLI entry point returns
the right exit codes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.chaos import (
    chaos_schedulers,
    cluster_targets,
    random_fault_plan,
    random_telemetry,
    run_chaos,
    run_chaos_case,
)
from repro.experiments.scenarios import get_scenario
from repro.faults import FaultPlan, TrackerCrash


def targets():
    return cluster_targets(get_scenario("ci").cluster)


# ----------------------------------------------------------------------
# generator properties
# ----------------------------------------------------------------------
class TestRandomFaultPlan:
    def test_intensity_zero_is_the_empty_plan(self):
        nodes, racks = targets()
        rng = np.random.default_rng(0)
        assert random_fault_plan(rng, nodes, racks, intensity=0.0).empty

    def test_negative_intensity_rejected(self):
        nodes, racks = targets()
        with pytest.raises(ValueError):
            random_fault_plan(np.random.default_rng(0), nodes, racks,
                              intensity=-1.0)

    def test_plans_are_survivable_by_construction(self):
        nodes, racks = targets()
        for s in range(50):
            rng = np.random.default_rng(s)
            plan = random_fault_plan(rng, nodes, racks, intensity=2.0)
            assert plan.task_failures is None
            for crash in plan.crashes:
                assert crash.down_for is not None and crash.down_for > 0
                assert crash.node in nodes
            for tc in plan.tracker_crashes:
                assert tc.down_for > 0
            for deg in plan.degradations:
                assert (deg.node in nodes) or (deg.rack in racks)
            if plan.heartbeat_loss is not None:
                assert plan.heartbeat_loss.prob < 1.0

    def test_generation_is_seed_stable(self):
        nodes, racks = targets()
        a = random_fault_plan(np.random.default_rng(9), nodes, racks)
        b = random_fault_plan(np.random.default_rng(9), nodes, racks)
        assert a == b

    def test_plans_round_trip_through_json(self):
        nodes, racks = targets()
        for s in range(10):
            plan = random_fault_plan(
                np.random.default_rng(s), nodes, racks, intensity=1.5
            )
            assert FaultPlan.from_json(plan.to_json()) == plan

    def test_random_telemetry_is_valid_and_bounded(self):
        for s in range(20):
            cfg = random_telemetry(np.random.default_rng(s), intensity=2.0)
            assert cfg.period > 0
            assert cfg.staleness_budget > 0
            assert 0 <= cfg.drop_prob < 1


# ----------------------------------------------------------------------
# the soak
# ----------------------------------------------------------------------
class TestRunChaos:
    def test_quick_soak_is_clean(self, tmp_path):
        trace_path = tmp_path / "chaos.jsonl"
        report = run_chaos(
            rounds=2, seed=5, quick=True, trace_path=str(trace_path)
        )
        assert report.ok, report.violations
        assert len(report.runs) == 2 * len(chaos_schedulers())
        assert all(r.jobs_completed == 4 for r in report.runs)
        assert "all runs completed" in report.summary()
        # the trace artifact holds every run's JSONL stream
        lines = trace_path.read_text().splitlines()
        assert sum(1 for l in lines if '"type":"run_start"' in l) == 6

    def test_rounds_validated(self):
        with pytest.raises(ValueError):
            run_chaos(rounds=0)

    def test_forced_tracker_crash_round(self):
        # pin the fault rather than hoping the generator rolls one: a
        # mid-run master outage must complete under every scheduler
        plan = FaultPlan(
            tracker_crashes=(TrackerCrash(at=15.0, down_for=20.0),)
        )
        for name, factory in chaos_schedulers().items():
            run, lines = run_chaos_case(
                0, name, factory, plan, None, 3, quick=True
            )
            assert run.ok, (name, run.violations)
            assert any('"type":"tracker_up"' in l for l in lines), name

    def test_violations_carry_round_and_scheduler(self):
        report = run_chaos(rounds=1, seed=5, quick=True)
        report.runs[0].violations.append("synthetic problem")
        assert not report.ok
        assert any("round 0" in v and "synthetic problem" in v
                   for v in report.violations)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestChaosCli:
    def test_chaos_subcommand(self, capsys, tmp_path):
        from repro.cli import main

        trace = tmp_path / "chaos.jsonl"
        code = main([
            "chaos", "--rounds", "1", "--seed", "5", "--quick",
            "--trace", str(trace),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "chaos soak:" in out
        assert trace.exists()

    def test_chaos_rejects_bad_args(self, capsys):
        from repro.cli import main

        assert main(["chaos", "--rounds", "0"]) == 2
        assert main(["chaos", "--intensity", "-1"]) == 2
