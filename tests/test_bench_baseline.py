"""``repro bench --baseline`` must degrade gracefully, never crash.

A stale, corrupted or incompatible baseline artifact (someone committed
``BENCH_perf.json`` from a different case set, or the file got
truncated) should cost a warning and a skipped regression check — a
benchmark run that produced good measurements must not exit non-zero
because the *comparison input* is unusable.  ``run_bench`` is stubbed so
these tests exercise only the CLI's baseline handling, not the timing
harness.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.perf import check_regression, load_baseline

FAKE_DOC = {
    "bench": "repro-perf",
    "version": 1,
    "mode": "quick",
    "cases": {
        "pna_hop": {"wall_s": 1.0, "events_per_s": 1000.0,
                    "offers_per_s": 100.0, "nodes": 16, "jobs": 8},
    },
}


@pytest.fixture
def stub_bench(monkeypatch):
    import repro.experiments.perf as perf

    monkeypatch.setattr(
        perf, "run_bench", lambda **kw: json.loads(json.dumps(FAKE_DOC))
    )


def bench(tmp_path, *extra):
    return main(["bench", "--quick", "--out", str(tmp_path / "out.json"),
                 *extra])


# ----------------------------------------------------------------------
# load_baseline unit behaviour
# ----------------------------------------------------------------------
class TestLoadBaseline:
    def test_missing_file(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) is None

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.json"
        p.write_text("")
        assert load_baseline(str(p)) is None

    def test_malformed_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"cases": [truncated')
        assert load_baseline(str(p)) is None

    def test_non_object_document(self, tmp_path):
        p = tmp_path / "list.json"
        p.write_text("[1, 2, 3]")
        assert load_baseline(str(p)) is None

    def test_valid_document(self, tmp_path):
        p = tmp_path / "ok.json"
        p.write_text(json.dumps(FAKE_DOC))
        assert load_baseline(str(p)) == FAKE_DOC


# ----------------------------------------------------------------------
# CLI paths
# ----------------------------------------------------------------------
class TestBenchBaselineCli:
    def test_missing_baseline_warns_and_passes(self, stub_bench, tmp_path,
                                               capsys):
        code = bench(tmp_path, "--baseline", str(tmp_path / "absent.json"))
        assert code == 0
        assert "warning: no usable baseline" in capsys.readouterr().out

    def test_corrupt_baseline_warns_and_passes(self, stub_bench, tmp_path,
                                               capsys):
        p = tmp_path / "corrupt.json"
        p.write_text("{{{{")
        code = bench(tmp_path, "--baseline", str(p))
        assert code == 0
        assert "warning: no usable baseline" in capsys.readouterr().out

    def test_incompatible_case_set_warns_and_passes(self, stub_bench,
                                                    tmp_path, capsys):
        doc = dict(FAKE_DOC, cases={"renamed_case": {"wall_s": 1.0}})
        p = tmp_path / "old.json"
        p.write_text(json.dumps(doc))
        code = bench(tmp_path, "--baseline", str(p))
        assert code == 0
        assert "shares no case names" in capsys.readouterr().out

    def test_clean_comparison_passes(self, stub_bench, tmp_path, capsys):
        p = tmp_path / "base.json"
        p.write_text(json.dumps(FAKE_DOC))
        code = bench(tmp_path, "--baseline", str(p))
        assert code == 0
        assert "no regression" in capsys.readouterr().out

    def test_real_regression_still_fails(self, stub_bench, tmp_path, capsys):
        fast = json.loads(json.dumps(FAKE_DOC))
        fast["cases"]["pna_hop"]["wall_s"] = 0.1  # current run is 10x slower
        p = tmp_path / "fast.json"
        p.write_text(json.dumps(fast))
        code = bench(tmp_path, "--baseline", str(p))
        assert code == 1
        assert "regression" in capsys.readouterr().err


# ----------------------------------------------------------------------
# check_regression tolerates sparse baselines
# ----------------------------------------------------------------------
class TestCheckRegression:
    def test_ignores_cases_missing_from_baseline(self):
        current = {"cases": {"a": {"wall_s": 9.0}, "b": {"wall_s": 1.0}}}
        baseline = {"cases": {"b": {"wall_s": 1.0}}}
        assert check_regression(current, baseline) == []

    def test_ignores_zero_wall_baselines(self):
        current = {"cases": {"a": {"wall_s": 9.0}}}
        baseline = {"cases": {"a": {"wall_s": 0.0}}}
        assert check_regression(current, baseline) == []

    def test_flags_beyond_factor(self):
        current = {"cases": {"a": {"wall_s": 3.0}}}
        baseline = {"cases": {"a": {"wall_s": 1.0}}}
        assert check_regression(current, baseline, factor=2.0)
        assert not check_regression(current, baseline, factor=4.0)


# ----------------------------------------------------------------------
# --repeat: min-of-N walls, recorded noise discipline
# ----------------------------------------------------------------------
class TestRepeat:
    def test_run_case_rejects_bad_repeat(self):
        from repro.experiments.perf import bench_cases, run_case

        with pytest.raises(ValueError):
            run_case(bench_cases(quick=True)[0], repeat=0)

    def test_repeat_keeps_deterministic_run_facts(self):
        from repro.experiments.perf import SMALL_CLUSTER, BenchCase, run_case

        case = BenchCase("tiny", "fair", SMALL_CLUSTER, scale=0.02)
        once = run_case(case, repeat=1)
        twice = run_case(case, repeat=2)
        # the simulation is deterministic: only the timing may differ
        for key in ("events", "offers", "makespan_s", "nodes", "jobs"):
            assert once[key] == twice[key]
        assert twice["wall_s"] > 0

    def test_run_bench_records_repeat(self, monkeypatch):
        import repro.experiments.perf as perf

        calls = []
        monkeypatch.setattr(
            perf, "run_case",
            lambda case, repeat=1: calls.append(repeat) or dict(
                FAKE_DOC["cases"]["pna_hop"]
            ),
        )
        doc = perf.run_bench(quick=True, measure_speedup=False, repeat=3)
        assert doc["repeat"] == 3
        assert calls and all(r == 3 for r in calls)

    def test_cli_passes_repeat_through(self, monkeypatch, tmp_path):
        import repro.experiments.perf as perf

        seen = {}

        def fake_run_bench(**kwargs):
            seen.update(kwargs)
            return json.loads(json.dumps(FAKE_DOC))

        monkeypatch.setattr(perf, "run_bench", fake_run_bench)
        assert bench(tmp_path, "--repeat", "3") == 0
        assert seen["repeat"] == 3

    def test_cli_rejects_bad_repeat(self, tmp_path, capsys):
        assert bench(tmp_path, "--repeat", "0") == 2
        assert "--repeat" in capsys.readouterr().err
