"""Integration tests pinning the paper's qualitative claims at test scale.

These are deliberately small simulations (8–16 nodes, a few percent of the
Table II workload) asserting *orderings and shapes*, not absolute numbers —
the full-scale reproduction lives in the benchmark harness and
EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BackgroundSpec, ClusterSpec
from repro.core import (
    PNAConfig,
    ProbabilisticNetworkAwareScheduler,
)
from repro.engine import Simulation
from repro.hdfs import SubsetPlacement
from repro.schedulers import CouplingScheduler, FairScheduler, RandomScheduler
from repro.workload import table2_batch


def run(scheduler, *, app="wordcount", scale=0.05, seed=21,
        placement=None, background=None, racks=2, per_rack=4):
    sim = Simulation(
        cluster=ClusterSpec(num_racks=racks, nodes_per_rack=per_rack),
        scheduler=scheduler,
        jobs=table2_batch(app, scale=scale),
        placement=placement,
        background=background,
        seed=seed,
    )
    return sim.run()


@pytest.fixture(scope="module")
def headline_runs():
    """One batch under the three compared schedulers plus random, in the
    canonical environment (hot-spotted background cross-traffic)."""
    kw = dict(
        background=BackgroundSpec(intensity=0.2, hotspot_alpha=1.0),
        racks=3, per_rack=4, scale=0.08,
    )
    return {
        "probabilistic": run(
            ProbabilisticNetworkAwareScheduler(PNAConfig(network_condition=True)),
            **kw,
        ),
        "coupling": run(CouplingScheduler(), **kw),
        "fair": run(FairScheduler(), **kw),
        "random": run(RandomScheduler(), **kw),
    }


class TestJobCompletionOrdering:
    def test_probabilistic_beats_coupling(self, headline_runs):
        """Section III-A: PNA reduces job time versus Coupling."""
        assert (
            headline_runs["probabilistic"].mean_jct
            < headline_runs["coupling"].mean_jct
        )

    def test_probabilistic_beats_random(self, headline_runs):
        assert (
            headline_runs["probabilistic"].mean_jct
            < headline_runs["random"].mean_jct
        )

    def test_probabilistic_competitive_with_fair(self, headline_runs):
        """Fair (delay scheduling) is a strong baseline in our substrate;
        PNA must stay within a small factor under uniform placement."""
        assert (
            headline_runs["probabilistic"].mean_jct
            < headline_runs["fair"].mean_jct * 1.25
        )


class TestLocalityOrdering:
    def test_probabilistic_locality_beats_coupling(self, headline_runs):
        """Table III: PNA's node-locality exceeds Coupling's coarse placement."""
        probl = headline_runs["probabilistic"].locality_shares()["node"]
        coupl = headline_runs["coupling"].locality_shares()["node"]
        assert probl > coupl

    def test_cost_aware_schedulers_beat_random_locality(self, headline_runs):
        rand = headline_runs["random"].locality_shares()["node"]
        for name in ("probabilistic", "coupling", "fair"):
            assert headline_runs[name].locality_shares()["node"] > rand

    def test_probabilistic_moves_fewer_bytes_than_random(self, headline_runs):
        assert (
            headline_runs["probabilistic"].collector.bytes_moved()
            < headline_runs["random"].collector.bytes_moved()
        )

    def test_transmission_cost_ordering(self, headline_runs):
        """The realised hop-model cost (what PNA optimises) is lower than
        random placement's."""
        assert (
            headline_runs["probabilistic"].collector.total_cost()
            < headline_runs["random"].collector.total_cost()
        )


class TestNASScenario:
    """Section I motivation: replicas confined to a storage subset."""

    @pytest.fixture(scope="class")
    def nas_runs(self):
        kw = dict(
            placement=SubsetPlacement(fraction=1 / 3),
            background=BackgroundSpec(intensity=0.2, hotspot_alpha=1.0),
            racks=4, per_rack=4, scale=0.1,
        )
        return {
            "probabilistic": run(
                ProbabilisticNetworkAwareScheduler(
                    PNAConfig(network_condition=True)), **kw),
            "fair": run(FairScheduler(), **kw),
            "coupling": run(CouplingScheduler(), **kw),
        }

    def test_pna_beats_both_baselines_under_scarce_locality(self, nas_runs):
        pna = nas_runs["probabilistic"].mean_jct
        assert pna < nas_runs["coupling"].mean_jct
        assert pna < nas_runs["fair"].mean_jct * 1.05

    def test_locality_is_structurally_capped(self, nas_runs):
        """With data on a third of nodes, nobody achieves near-full locality."""
        for r in nas_runs.values():
            assert r.locality_shares("map")["node"] < 0.9


class TestTailBehaviour:
    def test_probabilistic_tail_not_worse_than_coupling(self, headline_runs):
        """Figure 6's shape: PNA's slowest tasks finish no later."""
        p = headline_runs["probabilistic"].collector.task_durations("reduce")
        c = headline_runs["coupling"].collector.task_durations("reduce")
        assert np.percentile(p, 95) <= np.percentile(c, 95) * 1.05


class TestEstimatorClaim:
    def test_progress_estimator_not_worse_than_current_size(self):
        """Section II-B-2: extrapolation should not lose to the raw
        current-size proxy."""
        from repro.core import CurrentSizeEstimator, ProgressEstimator

        def jct(est):
            sched = ProbabilisticNetworkAwareScheduler(estimator=est)
            return run(sched, app="wordcount", scale=0.08,
                       racks=4, per_rack=4).mean_jct

        assert jct(ProgressEstimator()) <= jct(CurrentSizeEstimator()) * 1.10
