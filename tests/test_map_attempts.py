"""Direct tests of MapAttempt lifecycle (cancellation, winner selection)."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation, TaskState
from repro.schedulers import RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


def paused(num_maps=4, seed=3, factors=None):
    spec = JobSpec.make("01", "terasort", num_maps * 64 * MB, num_maps, 2)
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3,
                            compute_factors=factors),
        scheduler=RandomScheduler(),
        jobs=[spec],
        seed=seed,
    )
    sim.sim.run(until=1e-9)
    return sim, sim.tracker.active_jobs[0]


class TestWinnerSelection:
    def test_fast_backup_wins_and_updates_placement(self):
        factors = [1.0] * 6
        factors[0] = 0.01  # r0n0 is pathologically slow
        sim, job = paused(factors=factors)
        task = job.pending_maps()[0]
        slow = sim.cluster.node("r0n0")
        fast = sim.cluster.node("r1n0")
        task.launch(slow)
        task.launch_speculative(fast)
        sim.sim.run(until=200.0)
        assert task.done
        assert task.node is fast          # the backup won
        assert len(task.attempts) == 2

    def test_loser_slot_released_and_flow_cancelled(self):
        factors = [1.0] * 6
        factors[0] = 0.01
        sim, job = paused(factors=factors)
        task = job.pending_maps()[0]
        slow = sim.cluster.node("r0n0")
        fast = sim.cluster.node("r1n0")
        task.launch(slow)
        task.launch_speculative(fast)
        sim.sim.run(until=200.0)
        assert slow.running_maps == 0
        loser = task.attempts[0]
        assert loser.cancelled
        if loser.flow is not None:
            assert loser.flow.cancelled or loser.flow.done

    def test_record_reflects_winner_locality(self):
        factors = [1.0] * 6
        factors[0] = 0.01
        sim, job = paused(factors=factors)
        task = job.pending_maps()[0]
        slow = sim.cluster.node("r0n0")
        fast = sim.cluster.node("r1n0")
        task.launch(slow)
        task.launch_speculative(fast)
        sim.sim.run()
        rec = next(
            t for t in sim.tracker.collector.task_records
            if t.kind == "map" and t.index == task.index
        )
        assert rec.node == fast.name
        assert rec.attempts == 2


class TestCancellationBeforeFlow:
    def test_cancel_during_overhead_starts_no_flow(self):
        sim, job = paused()
        task = job.pending_maps()[0]
        node = sim.cluster.nodes[1]
        task.launch(node)
        attempt = task.attempts[0]
        attempt.cancel()  # cancelled while still in task-overhead phase
        sim.sim.run(until=30.0)
        assert attempt.flow is None
        assert node.running_maps <= node.map_slots  # no slot leak

    def test_cancel_is_idempotent(self):
        sim, job = paused()
        task = job.pending_maps()[0]
        node = sim.cluster.nodes[1]
        task.launch(node)
        attempt = task.attempts[0]
        attempt.cancel()
        before = node.running_maps
        attempt.cancel()
        assert node.running_maps == before
