"""Telemetry monitor tests: degraded measurement plane for PNA netcond.

Unit half: ``TelemetryConfig`` validation and ``TelemetryMonitor``
mechanics (sampling, per-path staleness, hop fallback, the all-stale
``None`` sentinel, the ``stale_telemetry`` trace event).  Acceptance
half — the two byte-identity bounds the design hinges on:

* ``period=inf`` (a monitor that never samples) degrades the
  network-condition PNA scheduler to **exactly** the hop-count variant's
  decisions, and
* ``period=0, noise=0, drop_prob=0`` (continuous exact measurement)
  reproduces the **oracle** network-condition scheduler bit for bit.

Both are proven on full traced runs, not spot checks.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster import ClusterSpec, TelemetryConfig, TelemetryMonitor
from repro.core import PNAConfig, ProbabilisticNetworkAwareScheduler
from repro.engine import EngineConfig, Simulation
from repro.sim import Simulator
from repro.units import MB
from repro.workload import JobSpec

INF = float("inf")


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------
class TestTelemetryConfig:
    def test_defaults_are_valid(self):
        cfg = TelemetryConfig()
        assert cfg.period == 5.0

    def test_boundary_values(self):
        TelemetryConfig(period=0.0)            # continuous
        TelemetryConfig(period=INF)            # never samples
        TelemetryConfig(staleness_budget=INF)  # trust forever
        TelemetryConfig(drop_prob=0.0)

    @pytest.mark.parametrize("kwargs", [
        {"period": -1.0},
        {"period": float("nan")},
        {"period": "fast"},
        {"staleness_budget": 0.0},
        {"staleness_budget": -5.0},
        {"noise": -0.1},
        {"noise": INF},
        {"drop_prob": 1.0},
        {"drop_prob": -0.2},
        {"drop_prob": True},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            TelemetryConfig(**kwargs)

    def test_engine_config_type_checks_telemetry(self):
        with pytest.raises(ValueError):
            EngineConfig(telemetry={"period": 5.0})
        EngineConfig(telemetry=TelemetryConfig())


# ----------------------------------------------------------------------
# monitor mechanics on a standalone cluster
# ----------------------------------------------------------------------
def make_monitor(config, seed=0):
    sim = Simulator()
    cluster = ClusterSpec(num_racks=2, nodes_per_rack=2).build(sim)
    rng = np.random.default_rng(seed)
    return sim, cluster, TelemetryMonitor(cluster, config, rng)


class TestMonitorMechanics:
    def test_unsampled_monitor_is_fully_blind(self):
        _, _, mon = make_monitor(TelemetryConfig(period=5.0))
        assert mon.distance_matrix(0.0) is None
        assert mon.samples_taken == 0

    def test_fresh_sample_matches_oracle_exactly(self):
        _, cluster, mon = make_monitor(TelemetryConfig(period=5.0))
        mon.sample()
        view = mon.distance_matrix(0.0)
        np.testing.assert_array_equal(view, cluster.inverse_rate_matrix())

    def test_period_zero_reads_through(self):
        _, cluster, mon = make_monitor(TelemetryConfig(period=0.0))
        view = mon.distance_matrix(0.0)
        assert mon.samples_taken == 1
        np.testing.assert_array_equal(view, cluster.inverse_rate_matrix())

    def test_everything_goes_stale_past_the_budget(self):
        _, _, mon = make_monitor(
            TelemetryConfig(period=5.0, staleness_budget=15.0)
        )
        mon.sample()  # at t=0
        assert mon.distance_matrix(15.0) is not None  # == budget: still fresh
        assert mon.distance_matrix(15.1) is None      # > budget: blind

    def test_partial_staleness_mixes_hops_and_measurements(self):
        _, cluster, mon = make_monitor(
            TelemetryConfig(period=5.0, staleness_budget=10.0, drop_prob=0.5)
        )
        sim = mon.sim
        mon.sample()            # t=0: ~half the paths measured
        sim.now = 5.0
        mon.sample()            # t=5: another coin flip per path
        stale = mon.stale_mask(12.0)  # t=0 measurements are now stale
        assert 0 < stale.sum() < stale.size - stale.shape[0]
        view = mon.distance_matrix(12.0)
        hops = cluster.hop_matrix
        oracle = cluster.inverse_rate_matrix()
        np.testing.assert_array_equal(view[stale], hops[stale])
        fresh = ~stale
        np.fill_diagonal(fresh, False)
        np.testing.assert_array_equal(view[fresh], oracle[fresh])

    def test_noise_is_multiplicative_and_seeded(self):
        _, cluster, a = make_monitor(TelemetryConfig(noise=0.5), seed=42)
        _, _, b = make_monitor(TelemetryConfig(noise=0.5), seed=42)
        a.sample()
        b.sample()
        np.testing.assert_array_equal(a._inv, b._inv)
        oracle = cluster.inverse_rate_matrix()
        off = oracle > 0
        assert not np.allclose(a._inv[off], oracle[off])  # noisy
        assert (a._inv[off] > 0).all()                    # but sign-preserving
        assert (np.diag(a._inv) == 0).all()

    def test_dropped_probes_keep_aging(self):
        _, _, mon = make_monitor(
            TelemetryConfig(period=5.0, staleness_budget=7.0, drop_prob=0.4)
        )
        mon.sample()  # t=0
        mon.sim.now = 5.0
        mon.sample()  # t=5: dropped paths still carry the t=0 timestamp
        stale = mon.stale_mask(8.0)
        # stale ⇔ the t=5 probe was dropped (timestamp still 0 or -inf)
        undelivered = mon._measured_at < 5.0
        np.fill_diagonal(undelivered, False)
        np.testing.assert_array_equal(stale, undelivered)
        assert stale.sum() > 0

    def test_stale_telemetry_event_emitted_on_change(self):
        from repro.trace.recorder import TraceRecorder

        sim = Simulator()
        cluster = ClusterSpec(num_racks=2, nodes_per_rack=2).build(sim)
        recorder = TraceRecorder()
        mon = TelemetryMonitor(
            cluster, TelemetryConfig(period=5.0, staleness_budget=10.0),
            np.random.default_rng(0), recorder=recorder,
        )
        mon.sample()
        mon.distance_matrix(1.0)   # all fresh — no change from initial 0
        mon.distance_matrix(11.0)  # all stale — one event
        mon.distance_matrix(12.0)  # still all stale — no new event
        events = [e for e in recorder.events if e.type == "stale_telemetry"]
        assert len(events) == 1
        assert events[0].stale_paths == events[0].total_paths == 12


# ----------------------------------------------------------------------
# acceptance: full-run byte identity at the degradation extremes
# ----------------------------------------------------------------------
def traced_run(*, network_condition, telemetry=None, seed=11):
    from repro.trace import jsonl_lines

    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=4),
        scheduler=ProbabilisticNetworkAwareScheduler(
            PNAConfig(network_condition=network_condition)
        ),
        jobs=[
            JobSpec.make(f"{i:02d}", "wordcount", 6 * 64 * MB, 6, 2)
            for i in range(1, 4)
        ],
        seed=seed,
        config=EngineConfig(telemetry=telemetry, trace=True,
                            check_invariants=True),
    )
    result = sim.run()
    lines = jsonl_lines(result.trace.events)
    # run_start embeds the config (differs by construction) and
    # stale_telemetry is new-information-only: exclude both, keep every
    # decision-bearing line
    return [
        l for l in lines
        if '"type":"run_start"' not in l
        and '"type":"stale_telemetry"' not in l
    ]


class TestDegradationExtremes:
    def test_blind_monitor_reproduces_hop_count_scheduler(self):
        hop = traced_run(network_condition=False)
        blind = traced_run(
            network_condition=True,
            telemetry=TelemetryConfig(period=INF),
        )
        assert blind == hop

    def test_continuous_exact_monitor_reproduces_oracle(self):
        oracle = traced_run(network_condition=True)
        fresh = traced_run(
            network_condition=True,
            telemetry=TelemetryConfig(period=0.0, noise=0.0, drop_prob=0.0),
        )
        assert fresh == oracle

    def test_degraded_run_is_seed_reproducible(self):
        cfg = TelemetryConfig(
            period=5.0, staleness_budget=8.0, noise=0.3, drop_prob=0.3
        )
        a = traced_run(network_condition=True, telemetry=cfg)
        b = traced_run(network_condition=True, telemetry=cfg)
        assert a == b

    def test_degraded_run_differs_from_oracle(self):
        # sanity that the knobs bite: heavy noise must eventually change
        # at least one decision on this workload
        cfg = TelemetryConfig(
            period=5.0, staleness_budget=8.0, noise=1.0, drop_prob=0.4
        )
        degraded = traced_run(network_condition=True, telemetry=cfg)
        oracle = traced_run(network_condition=True)
        assert degraded != oracle
