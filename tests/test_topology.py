"""Unit tests for network topologies (repro.cluster.topology)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.topology import (
    GraphTopology,
    MatrixTopology,
    fat_tree_topology,
    paper_example_topology,
    rack_topology,
    star_topology,
)
from repro.units import Gbps


class TestRackTopology:
    def test_host_count(self):
        topo = rack_topology(4, 15)
        assert topo.num_hosts == 60
        assert len(topo.hosts) == 60

    def test_hosts_sorted_and_indexed(self):
        topo = rack_topology(2, 3)
        assert topo.hosts == sorted(topo.hosts)
        for i, h in enumerate(topo.hosts):
            assert topo.host_index(h) == i

    def test_rack_labels(self):
        topo = rack_topology(2, 2)
        assert topo.rack_of("r0n0") == "rack0"
        assert topo.rack_of("r1n1") == "rack1"

    def test_hop_matrix_structure(self):
        topo = rack_topology(2, 3)
        h = topo.hop_matrix()
        names = topo.hosts
        for a, na in enumerate(names):
            for b, nb in enumerate(names):
                if a == b:
                    assert h[a, b] == 0
                elif topo.rack_of(na) == topo.rack_of(nb):
                    assert h[a, b] == 2  # host-tor-host
                else:
                    assert h[a, b] == 4  # host-tor-core-tor-host

    def test_hop_matrix_symmetric(self):
        h = rack_topology(3, 4).hop_matrix()
        assert np.array_equal(h, h.T)

    def test_single_rack_has_no_core(self):
        topo = rack_topology(1, 5)
        assert "core" not in topo.graph.nodes
        h = topo.hop_matrix()
        off_diag = h[~np.eye(5, dtype=bool)]
        assert np.all(off_diag == 2)

    def test_route_same_rack(self):
        topo = rack_topology(2, 3)
        route = topo.route("r0n0", "r0n1")
        assert len(route) == 2
        assert all("tor0" in link for link in route)

    def test_route_cross_rack(self):
        topo = rack_topology(2, 3)
        route = topo.route("r0n0", "r1n0")
        assert len(route) == 4

    def test_route_self_is_empty(self):
        topo = rack_topology(2, 3)
        assert topo.route("r0n0", "r0n0") == []

    def test_route_symmetric_links(self):
        topo = rack_topology(2, 3)
        fwd = topo.route("r0n0", "r1n2")
        rev = topo.route("r1n2", "r0n0")
        assert fwd == list(reversed(rev))

    def test_link_capacities(self):
        topo = rack_topology(2, 2, host_link=1 * Gbps, tor_uplink=10 * Gbps)
        host_links = [l for l in topo.links() if any("n" in str(e) and "tor" not in str(e) and "core" not in str(e) for e in l)]
        for link in topo.links():
            cap = topo.link_capacity(link)
            if "core" in link:
                assert cap == 10 * Gbps
            else:
                assert cap == 1 * Gbps

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            rack_topology(0, 5)
        with pytest.raises(ValueError):
            rack_topology(2, 0)


class TestStarTopology:
    def test_is_single_rack(self):
        topo = star_topology(6)
        assert topo.num_hosts == 6
        assert len({topo.rack_of(h) for h in topo.hosts}) == 1


class TestFatTree:
    def test_host_count_k4(self):
        topo = fat_tree_topology(4)
        assert topo.num_hosts == 4**3 // 4  # 16

    def test_host_count_k6(self):
        assert fat_tree_topology(6).num_hosts == 54

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree_topology(3)

    def test_hops_within_edge(self):
        topo = fat_tree_topology(4)
        h = topo.hop_matrix()
        i = topo.host_index("h0_0_0")
        j = topo.host_index("h0_0_1")
        assert h[i, j] == 2

    def test_hops_cross_pod(self):
        topo = fat_tree_topology(4)
        h = topo.hop_matrix()
        i = topo.host_index("h0_0_0")
        j = topo.host_index("h1_0_0")
        assert h[i, j] == 6  # host-edge-agg-core-agg-edge-host

    def test_racks_are_edge_switch_groups(self):
        topo = fat_tree_topology(4)
        assert topo.rack_of("h0_0_0") == topo.rack_of("h0_0_1")
        assert topo.rack_of("h0_0_0") != topo.rack_of("h0_1_0")


class TestMatrixTopology:
    def test_paper_example_distances(self):
        topo = paper_example_topology()
        h = topo.hop_matrix()
        # distances quoted in the paper's worked example (Section II-B)
        d3 = topo.host_index("D3")
        assert h[d3, topo.host_index("D1")] == 2
        assert h[d3, topo.host_index("D2")] == 10
        assert h[d3, topo.host_index("D4")] == 6
        assert h[topo.host_index("D2"), topo.host_index("D1")] == 4

    def test_route_is_direct(self):
        topo = paper_example_topology()
        assert len(topo.route("D1", "D2")) == 1
        assert topo.route("D1", "D1") == []

    def test_capacity_decays_with_distance(self):
        topo = MatrixTopology([[0, 2], [2, 0]], base_capacity=1 * Gbps)
        (link,) = topo.route("D1", "D2")
        assert topo.link_capacity(link) == pytest.approx(0.5 * Gbps)

    def test_explicit_capacities(self):
        caps = [[0, 7], [7, 0]]
        topo = MatrixTopology([[0, 2], [2, 0]], capacities=caps)
        (link,) = topo.route("D1", "D2")
        assert topo.link_capacity(link) == 7

    def test_asymmetric_matrix_rejected(self):
        with pytest.raises(ValueError):
            MatrixTopology([[0, 1], [2, 0]])

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValueError):
            MatrixTopology([[1, 2], [2, 0]])

    def test_negative_entry_rejected(self):
        with pytest.raises(ValueError):
            MatrixTopology([[0, -1], [-1, 0]])

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            MatrixTopology([[0, 1, 2], [1, 0, 2]])

    def test_custom_names_and_racks(self):
        topo = MatrixTopology(
            [[0, 1], [1, 0]], host_names=["a", "b"], racks=["r1", "r2"]
        )
        assert topo.hosts == ["a", "b"]
        assert topo.rack_of("a") == "r1"

    def test_name_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MatrixTopology([[0, 1], [1, 0]], host_names=["a"])


class TestGraphValidation:
    def test_missing_capacity_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node("h0", kind="host", rack="rack0")
        g.add_node("s", kind="switch")
        g.add_edge("h0", "s")
        with pytest.raises(ValueError):
            GraphTopology(g)

    def test_no_hosts_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node("s", kind="switch")
        with pytest.raises(ValueError):
            GraphTopology(g)
