"""Unit tests for the transmission-cost model (Formulae 1-3).

Includes a full check of the paper's Figure 2 worked example.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterSpec, paper_example_topology
from repro.core import (
    JobCostModel,
    OracleEstimator,
    ProgressEstimator,
    map_cost_matrix,
    reduce_cost_matrix,
)
from repro.engine import Simulation
from repro.schedulers import RandomScheduler
from repro.sim import Simulator
from repro.units import GB, MB
from repro.workload import JobSpec


class TestMapCostMatrix:
    def test_local_replica_is_free(self):
        d = np.array([[0.0, 2.0], [2.0, 0.0]])
        costs = map_cost_matrix(d, np.array([100.0]), [np.array([0])])
        assert costs[0, 0] == 0.0
        assert costs[1, 0] == 200.0

    def test_min_over_replicas(self):
        # node 2 is distance 5 from replica 0 but 1 from replica 1
        d = np.array([
            [0.0, 9.0, 5.0],
            [9.0, 0.0, 1.0],
            [5.0, 1.0, 0.0],
        ])
        costs = map_cost_matrix(d, np.array([10.0]), [np.array([0, 1])])
        assert costs[2, 0] == 10.0  # min(5, 1) * 10

    def test_scales_with_block_size(self):
        d = np.array([[0.0, 2.0], [2.0, 0.0]])
        costs = map_cost_matrix(d, np.array([10.0, 30.0]), [np.array([0]), np.array([0])])
        assert costs[1, 1] == 3 * costs[1, 0]


class TestReduceCostMatrix:
    def test_sums_over_maps(self):
        d = np.array([
            [0.0, 1.0, 2.0],
            [1.0, 0.0, 1.0],
            [2.0, 1.0, 0.0],
        ])
        map_nodes = np.array([0, 2])
        I = np.array([[10.0], [20.0]])
        costs = reduce_cost_matrix(d, map_nodes, I)
        # node 1: 10 * d[0,1] + 20 * d[2,1] = 10 + 20
        assert costs[1, 0] == 30.0
        # node 0: 10 * 0 + 20 * 2
        assert costs[0, 0] == 40.0

    def test_no_placed_maps_is_zero(self):
        d = np.eye(3)
        costs = reduce_cost_matrix(d, np.array([], dtype=int), np.zeros((0, 4)))
        assert costs.shape == (3, 4)
        assert np.all(costs == 0)


class TestPaperWorkedExample:
    """Figure 2: M1 on D3 (block on D1), M2 on D2 (block on D2);
    R1 on D1, R2 on D3; both blocks 128 MB; the given H and I matrices."""

    H = np.array([
        [0, 4, 2, 8],
        [4, 0, 10, 2],
        [2, 10, 0, 6],
        [8, 2, 6, 0],
    ], dtype=float)
    I = np.array([
        [10.0, 5.0],   # M1 -> R1, R2 (MB)
        [20.0, 10.0],  # M2 -> R1, R2
    ])

    def test_map_costs(self):
        B = np.array([128.0, 128.0])  # MB
        replicas = [np.array([0]), np.array([1])]  # M1's block on D1, M2's on D2
        costs = map_cost_matrix(self.H, B, replicas)
        # paper: cost of M1 on D3 = 128 * 2 = 256; M2 on D2 = 128 * 0 = 0
        assert costs[2, 0] == 256.0
        assert costs[1, 1] == 0.0

    def test_mapper_reducer_distance_matrix(self):
        # distances from (M1 on D3, M2 on D2) to (R1 on D1, R2 on D3)
        placement = np.array([2, 1])  # M1 -> D3, M2 -> D2
        d_m1 = [self.H[2, 0], self.H[2, 2]]
        d_m2 = [self.H[1, 0], self.H[1, 2]]
        assert d_m1 == [2, 0]
        assert d_m2 == [4, 10]

    def test_reduce_costs_match_link_costs(self):
        placement = np.array([2, 1])
        costs = reduce_cost_matrix(self.H, placement, self.I)
        # R1 on D1: 10 MB * 2 hops + 20 MB * 4 hops = 100
        assert costs[0, 0] == 100.0
        # R2 on D3: 5 MB * 0 + 10 MB * 10 = 100
        assert costs[2, 1] == 100.0
        # total for the assignment in Figure 2(b)
        assert costs[0, 0] + costs[2, 1] == 200.0


def build_job_sim(num_maps=6, num_reduces=3, nodes=6):
    spec = JobSpec.make(
        "01", "terasort", num_maps * 64 * MB, num_maps, num_reduces
    )
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=nodes // 2),
        scheduler=RandomScheduler(),
        jobs=[spec],
        seed=11,
    )
    return sim


class TestJobCostModel:
    def test_map_costs_zero_on_replica_holders(self):
        sim = build_job_sim()
        sim.tracker.start()
        sim.sim.run(until=0.01)
        job = sim.tracker.active_jobs[0]
        model = JobCostModel(job)
        all_nodes = np.arange(sim.cluster.num_nodes)
        all_tasks = np.arange(job.num_maps)
        costs = model.map_costs(all_nodes, all_tasks)
        for j, block in enumerate(job.file.blocks):
            for rep in block.replicas:
                assert costs[sim.cluster.node(rep).index, j] == 0.0

    def test_map_costs_respect_min_replica_distance(self):
        sim = build_job_sim()
        sim.tracker.start()
        sim.sim.run(until=0.01)
        job = sim.tracker.active_jobs[0]
        model = JobCostModel(job)
        hops = sim.cluster.hop_matrix
        nn = sim.tracker.namenode
        costs = model.map_costs(
            np.arange(sim.cluster.num_nodes), np.arange(job.num_maps)
        )
        for j, block in enumerate(job.file.blocks):
            for node in sim.cluster.nodes:
                _, h = nn.closest_replica(block, node.name)
                assert costs[node.index, j] == pytest.approx(block.size * h)

    def test_reduce_costs_match_bruteforce(self):
        """Incremental Sc cache equals the direct Formula (2) computation."""
        sim = build_job_sim(num_maps=8, num_reduces=4)
        job = None
        sched_model = {}

        sim.tracker.start()
        # attach model at submission time via listener registration
        job = sim.tracker.active_jobs[0] if sim.tracker.active_jobs else None
        if job is None:
            sim.sim.run(until=0.001)
            job = sim.tracker.active_jobs[0]
        model = JobCostModel.attach(job)
        sim.sim.run(until=30.0)  # some maps done, some running

        now = sim.sim.now
        nodes = np.arange(sim.cluster.num_nodes)
        reduces = np.arange(job.num_reduces)
        est = ProgressEstimator()
        fast = model.reduce_costs(nodes, reduces, now, estimator=est)

        # brute force over started maps
        hops = sim.cluster.hop_matrix
        expected = np.zeros((len(nodes), len(reduces)))
        for m in job.maps:
            if m.node is None:
                continue
            row = est.estimate(m, now)
            for i in nodes:
                expected[i] += hops[m.node.index, i] * row
        assert np.allclose(fast, expected)

    def test_custom_distance_matrix_recomputes(self):
        sim = build_job_sim()
        sim.tracker.start()
        sim.sim.run(until=0.001)
        job = sim.tracker.active_jobs[0]
        model = JobCostModel.attach(job)
        sim.sim.run(until=30.0)
        nodes = np.arange(sim.cluster.num_nodes)
        reduces = np.arange(job.num_reduces)
        # doubling the distance matrix doubles every cost
        base = model.reduce_costs(nodes, reduces, sim.sim.now)
        doubled = model.reduce_costs(
            nodes, reduces, sim.sim.now, distance=2.0 * sim.cluster.hop_matrix
        )
        assert np.allclose(doubled, 2 * base)

    def test_realised_cost_requires_all_placed(self):
        sim = build_job_sim(num_maps=30)
        sim.tracker.start()
        sim.sim.run(until=0.001)
        job = sim.tracker.active_jobs[0]
        model = JobCostModel(job)
        with pytest.raises(RuntimeError):
            model.realised_reduce_costs(np.arange(2), np.arange(2))

    def test_oracle_estimate_matches_realised_when_done(self):
        sim = build_job_sim(num_maps=4, num_reduces=2)
        sim.tracker.start()
        sim.sim.run(until=0.001)
        job = sim.tracker.active_jobs[0]
        model = JobCostModel.attach(job)
        sim.sim.run()  # to completion
        now = sim.sim.now
        nodes = np.arange(sim.cluster.num_nodes)
        reduces = np.arange(job.num_reduces)
        est = model.reduce_costs(nodes, reduces, now, estimator=OracleEstimator())
        real = model.realised_reduce_costs(nodes, reduces)
        assert np.allclose(est, real)
