"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import ecdf, ecdf_at, quantile, reduction_percent
from repro.cluster.network import FlowNetwork
from repro.cluster.topology import MatrixTopology, rack_topology
from repro.core import ExponentialModel, HyperbolicModel, LinearModel
from repro.core.cost import map_cost_matrix, reduce_cost_matrix
from repro.sim import Simulator
from repro.units import MB, Gbps
from repro.workload.partition import intermediate_matrix, partition_weights

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
sizes = st.floats(min_value=1.0, max_value=1e12, allow_nan=False)
small_int = st.integers(min_value=1, max_value=50)
alpha = st.floats(min_value=0.0, max_value=3.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestPartitionWeightProperties:
    @given(n=small_int, a=alpha, seed=seeds)
    def test_weights_form_a_distribution(self, n, a, seed):
        w = partition_weights(n, a, np.random.default_rng(seed))
        assert w.shape == (n,)
        assert np.all(w > 0)
        assert w.sum() == pytest.approx(1.0)

    @given(n=st.integers(min_value=2, max_value=40), a=alpha, seed=seeds)
    def test_zero_alpha_minimises_max_weight(self, n, a, seed):
        rng = np.random.default_rng(seed)
        w = partition_weights(n, a, rng)
        assert w.max() >= 1.0 / n - 1e-12

    @given(
        m=small_int, n=small_int, ratio=st.floats(0.0, 5.0), seed=seeds
    )
    def test_intermediate_matrix_totals(self, m, n, ratio, seed):
        rng = np.random.default_rng(seed)
        b = rng.uniform(1, 100, size=m) * MB
        w = partition_weights(n, 0.5, rng)
        I = intermediate_matrix(b, ratio, w)
        assert I.shape == (m, n)
        assert np.all(I >= 0)
        assert I.sum() == pytest.approx(b.sum() * ratio, rel=1e-9)
        # row sums proportional to block sizes
        if ratio > 0:
            rows = I.sum(axis=1)
            assert np.allclose(rows, b * ratio, rtol=1e-9)


class TestProbabilityModelProperties:
    models = [ExponentialModel(), HyperbolicModel(), LinearModel()]

    @given(
        c_ave=st.floats(0.0, 1e9, allow_nan=False),
        cost=st.floats(0.0, 1e9, allow_nan=False),
    )
    def test_all_models_bounded(self, c_ave, cost):
        for model in self.models:
            p = float(model.probability(c_ave, cost))
            assert 0.0 <= p <= 1.0

    @given(
        c_ave=st.floats(0.001, 1e6, allow_nan=False),
        scale=st.floats(0.001, 1000.0, allow_nan=False),
    )
    def test_ratio_invariance(self, c_ave, scale):
        """Every model depends only on the ratio c_ave / cost, so a common
        rescale of both arguments leaves the probability unchanged."""
        cost = c_ave * 1.7
        for model in self.models:
            p1 = float(model.probability(c_ave, cost))
            p2 = float(model.probability(c_ave * scale, cost * scale))
            assert p1 == pytest.approx(p2, rel=1e-9)


class TestCostMatrixProperties:
    @given(
        k=st.integers(min_value=2, max_value=10),
        m=st.integers(min_value=1, max_value=12),
        seed=seeds,
    )
    def test_map_cost_nonnegative_zero_on_replica(self, k, m, seed):
        rng = np.random.default_rng(seed)
        d = rng.uniform(1, 10, size=(k, k))
        d = (d + d.T) / 2
        np.fill_diagonal(d, 0.0)
        b = rng.uniform(1, 100, size=m)
        reps = [
            rng.choice(k, size=rng.integers(1, min(3, k) + 1), replace=False)
            for _ in range(m)
        ]
        costs = map_cost_matrix(d, b, reps)
        assert np.all(costs >= 0)
        for j in range(m):
            for r in reps[j]:
                assert costs[r, j] == 0.0
            # cost never exceeds block size times max distance
            assert np.all(costs[:, j] <= b[j] * d.max() + 1e-9)

    @given(
        k=st.integers(min_value=2, max_value=8),
        m=st.integers(min_value=1, max_value=10),
        n=st.integers(min_value=1, max_value=6),
        seed=seeds,
    )
    def test_reduce_cost_linearity(self, k, m, n, seed):
        """Cost is linear in the intermediate matrix."""
        rng = np.random.default_rng(seed)
        d = rng.uniform(0, 10, size=(k, k))
        d = (d + d.T) / 2
        np.fill_diagonal(d, 0.0)
        p = rng.integers(0, k, size=m)
        I = rng.uniform(0, 100, size=(m, n))
        c1 = reduce_cost_matrix(d, p, I)
        c2 = reduce_cost_matrix(d, p, 3.0 * I)
        assert np.allclose(c2, 3.0 * c1)
        # additivity over map subsets
        half = m // 2
        ca = reduce_cost_matrix(d, p[:half], I[:half])
        cb = reduce_cost_matrix(d, p[half:], I[half:])
        assert np.allclose(ca + cb, c1)


class TestECDFProperties:
    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200))
    def test_ecdf_is_a_cdf(self, values):
        xs, ps = ecdf(np.array(values))
        assert np.all(np.diff(xs) > 0)          # strictly increasing supports
        assert np.all(np.diff(ps) > 0)          # strictly increasing mass
        assert ps[-1] == pytest.approx(1.0)
        assert 0 < ps[0] <= 1

    @given(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=100),
        st.floats(0.0, 1.0),
    )
    def test_quantile_inverts_ecdf(self, values, q):
        arr = np.array(values)
        x = quantile(arr, q)
        assert ecdf_at(arr, x) >= q - 1e-12

    @given(
        st.lists(st.floats(1.0, 1e6, allow_nan=False), min_size=1, max_size=50),
        st.floats(0.1, 10.0),
    )
    def test_reduction_percent_bounds(self, baseline, factor):
        b = np.array(baseline)
        ours = b * factor
        r = reduction_percent(b, ours)
        # reduction of a uniformly scaled run is constant
        assert np.allclose(r, 100.0 * (1 - factor), rtol=1e-9)
        assert np.all(r <= 100.0 + 1e-9)


class TestNetworkProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=seeds,
        n_flows=st.integers(min_value=1, max_value=30),
    )
    def test_max_min_allocation_invariants(self, seed, n_flows):
        """After an arbitrary batch of arrivals:
        * every active flow has a positive rate;
        * no link is oversubscribed;
        * the allocation is max-min fair: any flow not at its cap is
          bottlenecked at some saturated link where it has a maximal rate.
        """
        sim = Simulator()
        topo = rack_topology(2, 3, host_link=1 * Gbps, tor_uplink=2 * Gbps)
        net = FlowNetwork(sim, topo)
        rng = np.random.default_rng(seed)
        hosts = topo.hosts
        for _ in range(n_flows):
            a, b = rng.choice(len(hosts), size=2, replace=False)
            cap = float(rng.uniform(0.01, 2.0) * Gbps) if rng.random() < 0.3 else math.inf
            net.start_flow(hosts[a], hosts[b], float(rng.uniform(1, 500) * MB),
                           max_rate=cap)
        sim.run(until=1e-6)

        flows = list(net._flows)
        loads: dict = {}
        for f in flows:
            assert f.rate > 0
            assert f.rate <= f.max_rate * (1 + 1e-9)
            for link in f.route:
                loads[link] = loads.get(link, 0.0) + f.rate
        for link, load in loads.items():
            assert load <= topo.link_capacity(link) * (1 + 1e-9)
        # max-min: each uncapped flow crosses a saturated link on which it
        # is among the fastest flows
        for f in flows:
            if f.rate >= f.max_rate * (1 - 1e-9):
                continue  # cap-limited
            bottlenecked = False
            for link in f.route:
                cap = topo.link_capacity(link)
                if loads[link] >= cap * (1 - 1e-6):
                    fastest = max(
                        g.rate for g in net._flows if link in g.route
                    )
                    if f.rate >= fastest * (1 - 1e-6):
                        bottlenecked = True
                        break
            assert bottlenecked, f"flow {f} is neither capped nor bottlenecked"

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=seeds, n_flows=st.integers(min_value=1, max_value=20))
    def test_bytes_conserved_through_arbitrary_sharing(self, seed, n_flows):
        sim = Simulator()
        topo = rack_topology(2, 3)
        net = FlowNetwork(sim, topo)
        rng = np.random.default_rng(seed)
        hosts = topo.hosts
        total = 0.0
        ends = []
        for _ in range(n_flows):
            a, b = rng.choice(len(hosts), size=2, replace=False)
            size = float(rng.uniform(0.1, 100) * MB)
            total += size
            sim.schedule(
                float(rng.uniform(0, 3)),
                lambda a=a, b=b, size=size: net.start_flow(
                    hosts[a], hosts[b], size,
                    on_complete=lambda f: ends.append(f.size),
                ),
            )
        sim.run()
        assert len(ends) == n_flows
        assert sum(ends) == pytest.approx(total)
        assert net.bytes_transferred == pytest.approx(total)


class TestMatrixTopologyProperties:
    @given(
        k=st.integers(min_value=2, max_value=8),
        seed=seeds,
    )
    def test_random_matrix_topology_roundtrip(self, k, seed):
        rng = np.random.default_rng(seed)
        h = rng.integers(1, 20, size=(k, k)).astype(float)
        h = (h + h.T) / 2
        np.fill_diagonal(h, 0.0)
        topo = MatrixTopology(h)
        assert np.array_equal(topo.hop_matrix(), h)
        for i in range(k):
            for j in range(k):
                if i == j:
                    assert topo.route(topo.hosts[i], topo.hosts[j]) == []
                else:
                    assert len(topo.route(topo.hosts[i], topo.hosts[j])) == 1
