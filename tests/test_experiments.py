"""Tests for the experiments package (scenarios + per-figure runners).

Runner tests use a deliberately tiny scenario (8 nodes, 3 % workload, quiet
fabric) so the full figure pipeline executes in seconds; the paper-shape
assertions live in the benchmark harness, which runs the CI scenario.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import BackgroundSpec, ClusterSpec
from repro.experiments import (
    SCENARIOS,
    Scenario,
    comparison,
    fig3_data_sizes,
    fig4_jct,
    fig5_reduction,
    fig6_task_times,
    fig7_locality_by_size,
    get_scenario,
    table3_locality,
)
from repro.experiments.runner import _comparison_cache
from repro.units import GB


@pytest.fixture(scope="module")
def tiny():
    return Scenario(
        name="tiny-test",
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=4),
        scale=0.03,
        background=None,
        seed=11,
    )


@pytest.fixture(scope="module")
def results(tiny):
    return comparison(tiny)


class TestScenarios:
    def test_registry_names(self):
        assert {"ci", "medium", "paper", "nas"} <= set(SCENARIOS)

    def test_get_scenario_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scenario().name == "ci"

    def test_get_scenario_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "nas")
        assert get_scenario().name == "nas"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            get_scenario("galactic")

    def test_with_override(self):
        s = get_scenario("ci").with_(seed=99)
        assert s.seed == 99
        assert s.name == "ci"

    def test_jobs_scaled(self):
        s = get_scenario("ci")
        jobs = s.jobs("wordcount")
        assert len(jobs) == 10
        assert jobs[-1].input_size == pytest.approx(100 * GB * s.scale)

    def test_paper_scenario_is_full_scale(self):
        s = get_scenario("paper")
        assert s.scale == 1.0
        assert s.cluster.num_nodes == 60

    def test_nas_scenario_has_subset_placement(self):
        from repro.hdfs import SubsetPlacement

        assert isinstance(get_scenario("nas").placement, SubsetPlacement)


class TestComparison:
    def test_all_pairs_present(self, results):
        assert set(results) == {"probabilistic", "coupling", "fair"}
        for runs in results.values():
            assert set(runs) == {"wordcount", "terasort", "grep"}
            for r in runs.values():
                assert r.job_completion_times.size == 10

    def test_memoised(self, tiny, results):
        again = comparison(tiny)
        assert again is results

    def test_same_layout_across_schedulers(self, results):
        """Identical seeds mean identical workload shapes per scheduler."""
        shapes = {
            name: [
                (rec.job_id, rec.num_maps, rec.num_reduces)
                for app in sorted(runs)
                for rec in sorted(runs[app].collector.job_records,
                                  key=lambda r: r.job_id)
            ]
            for name, runs in results.items()
        }
        assert shapes["probabilistic"] == shapes["coupling"] == shapes["fair"]


class TestFigureRunners:
    def test_fig3_shapes(self):
        data = fig3_data_sizes()
        assert data["input"].shape == (30,)
        assert data["shuffle"].shape == (30,)
        assert data["input"].max() == pytest.approx(100 * GB)

    def test_fig4(self, tiny, results):
        data = fig4_jct(tiny)
        for name, v in data.items():
            assert v.shape == (30,)
            assert np.all(v > 0)

    def test_fig5_pairing(self, tiny, results):
        data = fig5_reduction(tiny)
        assert set(data) == {"vs_coupling", "vs_fair"}
        assert data["vs_coupling"].shape == (30,)
        assert np.all(data["vs_coupling"] <= 100.0)

    def test_fig6(self, tiny, results):
        data = fig6_task_times(tiny)
        total_maps = sum(
            e.num_maps for e in
            __import__("repro.workload", fromlist=["TABLE2"]).TABLE2
        )
        for name, v in data["map"].items():
            assert v.size > 0
        for name, v in data["reduce"].items():
            assert np.all(v > 0)

    def test_table3(self, tiny, results):
        data = table3_locality(tiny)
        for name, shares in data.items():
            assert abs(sum(shares.values()) - 1.0) < 1e-9

    def test_fig7(self, tiny, results):
        data = fig7_locality_by_size(tiny)
        for name, by_size in data.items():
            assert sorted(by_size) == list(range(10, 101, 10))
            for frac in by_size.values():
                assert 0.0 <= frac <= 1.0


class TestCLI:
    def test_cli_table2(self, capsys):
        from repro.cli import main

        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Wordcount_10GB" in out
        assert "930" in out  # Wordcount_100GB map count

    def test_cli_fig3(self, capsys):
        from repro.cli import main

        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "shuffle" in out

    def test_cli_rejects_unknown(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fig99"])
