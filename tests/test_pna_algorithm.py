"""White-box tests of the PNA scheduler's Algorithm 1 / 2 mechanics.

These drive ``select_map`` / ``select_reduce`` directly against a live
engine state, with a stubbed RNG so the Bernoulli draw (Lines 13-16) is
deterministic, and verify the selection against hand-computed Formulae.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.core import (
    ExponentialModel,
    PNAConfig,
    ProbabilisticNetworkAwareScheduler,
)
from repro.engine import Simulation
from repro.schedulers import RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


class FixedRng:
    """An rng whose random() returns a fixed sequence (integers unused)."""

    def __init__(self, values):
        self.values = list(values)
        self.calls = 0

    def random(self):
        self.calls += 1
        if self.values:
            return self.values.pop(0)
        return 0.0

    def integers(self, *a, **k):  # pragma: no cover - not used by PNA
        return 0


def make_state(num_maps=6, num_reduces=3, seed=13):
    """A live simulation paused right after submission (nothing placed)."""
    spec = JobSpec.make("01", "terasort", num_maps * 64 * MB,
                        num_maps, num_reduces)
    sched = ProbabilisticNetworkAwareScheduler()
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=sched,
        jobs=[spec],
        seed=seed,
    )
    sim.tracker.start()
    sim.sim.run(until=1e-9)  # submission event only (heartbeats staggered)
    job = sim.tracker.active_jobs[0]
    return sim, sched, job


class TestAlgorithm1:
    def test_picks_highest_probability_candidate(self):
        sim, sched, job = make_state()
        ctx = sim.tracker.ctx
        ctx.rng = FixedRng([0.0])  # always accept the draw
        node = sim.cluster.nodes[0]
        task = sched.select_map(node, job, ctx)
        assert task is not None

        # recompute by hand: the chosen task maximises P (Formula 4)
        model = sched.cost_model(job)
        free = np.array([n.index for n in ctx.free_map_nodes()])
        pend = np.array([m.index for m in job.pending_maps()])
        costs = model.map_costs(free, pend)
        row = int(np.nonzero(free == node.index)[0][0])
        probs = ExponentialModel().probability(costs.mean(axis=0), costs[row])
        assert task.index == pend[int(np.argmax(probs))]

    def test_local_block_gives_p_one(self):
        sim, sched, job = make_state()
        ctx = sim.tracker.ctx
        ctx.rng = FixedRng([0.999999])  # accept only if P == 1
        # find a node holding some block
        block = job.maps[0].block
        node = sim.cluster.node(block.replicas[0])
        task = sched.select_map(node, job, ctx)
        assert task is not None
        # the chosen task must be local to this node (cost 0 -> P = 1)
        assert node.name in task.block.replicas

    def test_bernoulli_rejection(self):
        """If the draw exceeds P, the offer is declined (Lines 13-16)."""
        sim, sched, job = make_state()
        ctx = sim.tracker.ctx
        node = sim.cluster.nodes[0]
        # P for some candidate is 1 (replica present); a draw must be < P.
        ctx.rng = FixedRng([1.0])  # random() == 1.0 >= any P -> reject
        assert sched.select_map(node, job, ctx) is None

    def test_p_min_gate_declines_expensive_offers(self):
        sim, sched, job = make_state()
        ctx = sim.tracker.ctx
        ctx.rng = FixedRng([0.0])
        node = sim.cluster.nodes[0]
        model = sched.cost_model(job)
        free = np.array([n.index for n in ctx.free_map_nodes()])
        pend = np.array([m.index for m in job.pending_maps()])
        costs = model.map_costs(free, pend)
        row = int(np.nonzero(free == node.index)[0][0])
        probs = ExponentialModel().probability(costs.mean(axis=0), costs[row])
        p_best = probs.max()
        # a threshold just above the best probability forces a decline
        strict = ProbabilisticNetworkAwareScheduler(
            PNAConfig(p_min=min(float(p_best) + 1e-6, 0.999))
        )
        strict._models = sched._models  # share the attached cost model
        if p_best < 0.999:
            assert strict.select_map(node, job, ctx) is None

    def test_no_pending_maps_returns_none(self):
        sim, sched, job = make_state()
        ctx = sim.tracker.ctx
        for m in job.pending_maps():
            m.launch(sim.cluster.nodes[m.index % 6])
        assert sched.select_map(sim.cluster.nodes[0], job, ctx) is None


class TestAlgorithm2:
    def test_colocation_line1(self):
        sim, sched, job = make_state(num_maps=4, num_reduces=4)
        ctx = sim.tracker.ctx
        ctx.rng = FixedRng([0.0, 0.0, 0.0])
        node = sim.cluster.nodes[0]
        # launch one reducer there by hand
        r0 = job.reduces[0]
        r0.launch(node)
        assert job.has_running_reduce_on(node.name)
        assert sched.select_reduce(node, job, ctx) is None

    def test_zero_cost_everywhere_accepts(self):
        """Before any map starts, all reduce costs are 0 -> P = 1."""
        sim, sched, job = make_state(num_maps=4, num_reduces=2)
        ctx = sim.tracker.ctx
        ctx.rng = FixedRng([0.5])
        node = sim.cluster.nodes[0]
        task = sched.select_reduce(node, job, ctx)
        assert task is not None

    def test_reduce_cost_drives_selection(self):
        """After maps complete, the reduce with max P here is returned."""
        sim, sched, job = make_state(num_maps=4, num_reduces=3)
        sim.sim.run(until=120.0)  # let all maps finish
        assert job.all_maps_done
        ctx = sim.tracker.ctx
        ctx.rng = FixedRng([0.0])
        # pick a node with free reduce slot and no running reduce of the job
        node = next(
            n for n in sim.cluster.nodes_with_free_reduce_slots()
            if not job.has_running_reduce_on(n.name)
        )
        pending = job.pending_reduces()
        if not pending:
            pytest.skip("all reduces already placed by the run")
        task = sched.select_reduce(node, job, ctx)
        assert task is not None

        model = sched.cost_model(job)
        free = np.array([n.index for n in ctx.free_reduce_nodes()])
        idx = np.array([r.index for r in pending])
        costs = model.reduce_costs(free, idx, ctx.now, estimator=sched.estimator)
        row = int(np.nonzero(free == node.index)[0][0])
        probs = ExponentialModel().probability(costs.mean(axis=0), costs[row])
        assert task.index == idx[int(np.argmax(probs))]


class TestNetworkConditionVariant:
    def test_uses_inverse_rate_matrix(self):
        sim, _, job = make_state()
        sched = ProbabilisticNetworkAwareScheduler(
            PNAConfig(network_condition=True)
        )
        sched.on_job_added(job)
        ctx = sim.tracker.ctx
        ctx.rng = FixedRng([0.0])
        node = sim.cluster.nodes[0]
        task = sched.select_map(node, job, ctx)
        assert task is not None
        # distance callable returns a matrix, not None
        d = sched._distance(ctx)
        assert d is not None
        assert d.shape == (6, 6)
        assert np.all(np.diag(d) == 0.0)
