"""Tests for the runtime invariant checker (``repro.engine.invariants``).

Positive path: a clean run with checking enabled executes thousands of
checks and raises nothing, and enabling the checker is behaviour-neutral
(identical metrics with it on or off).  Negative path: each invariant is
individually broken by corrupting live state and must raise
:class:`InvariantViolation`.
"""

from __future__ import annotations

import types

import numpy as np
import pytest

from repro import ClusterSpec, EngineConfig, Simulation, table2_batch
from repro.core import ProbabilisticNetworkAwareScheduler
from repro.engine.invariants import InvariantChecker, InvariantViolation
from repro.schedulers import FairScheduler


def tiny_sim(check=True, scheduler=None, seed=11):
    return Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=scheduler or ProbabilisticNetworkAwareScheduler(),
        jobs=table2_batch("wordcount", scale=0.02)[:3],
        config=EngineConfig(check_invariants=check),
        seed=seed,
    )


@pytest.fixture
def live():
    """A simulation advanced mid-run, with active jobs and a live checker."""
    sim = tiny_sim(check=True)
    sim.tracker.start()
    sim.sim.run(until=30.0)
    inv = sim.tracker.invariants
    assert inv is not None
    assert sim.tracker.active_jobs, "fixture needs an in-flight job"
    return sim, inv


# ----------------------------------------------------------------------
# clean runs
# ----------------------------------------------------------------------
class TestCleanRun:
    def test_checker_attached_and_active(self):
        sim = tiny_sim(check=True)
        result = sim.run()
        inv = sim.tracker.invariants
        assert inv is not None
        assert inv.checks_run > 0
        assert inv.violations_raised == 0
        assert result.job_completion_times.size == 3

    def test_disabled_config_attaches_no_checker(self):
        sim = tiny_sim(check=False)
        assert sim.tracker.invariants is None

    def test_checking_is_behaviour_neutral(self):
        r_on = tiny_sim(check=True).run()
        r_off = tiny_sim(check=False).run()
        assert np.array_equal(
            r_on.job_completion_times, r_off.job_completion_times
        )
        assert r_on.bytes_over_fabric == r_off.bytes_over_fabric
        assert r_on.bytes_local == r_off.bytes_local
        assert r_on.sim_time == r_off.sim_time

    def test_env_flag_controls_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert EngineConfig().check_invariants is False
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert EngineConfig().check_invariants is True
        # explicit argument always wins over the environment
        assert EngineConfig(check_invariants=True).check_invariants is True

    def test_cli_flag_parses(self, capsys):
        from repro.cli import main

        assert main(["table2", "--check-invariants"]) == 0
        assert "Table II" in capsys.readouterr().out


# ----------------------------------------------------------------------
# broken invariants raise
# ----------------------------------------------------------------------
class TestViolations:
    def test_negative_slot_count_raises(self, live):
        sim, inv = live
        sim.cluster.nodes[0].running_maps = -1
        with pytest.raises(InvariantViolation, match="running_maps"):
            inv.check_slots()
        assert inv.violations_raised == 1

    def test_slot_overflow_raises(self, live):
        sim, inv = live
        node = sim.cluster.nodes[0]
        node.running_reduces = node.reduce_slots + 1
        with pytest.raises(InvariantViolation, match="running_reduces"):
            inv.check_slots()

    def test_probability_above_one_raises(self, live):
        _, inv = live
        with pytest.raises(InvariantViolation, match="outside"):
            inv.check_probabilities(np.array([0.2, 1.5]), where="test")

    def test_probability_below_zero_raises(self, live):
        _, inv = live
        with pytest.raises(InvariantViolation, match="outside"):
            inv.check_probabilities(-0.1, where="test")

    def test_non_finite_probability_raises(self, live):
        _, inv = live
        with pytest.raises(InvariantViolation, match="non-finite"):
            inv.check_probabilities(float("nan"), where="test")

    def test_valid_probabilities_pass(self, live):
        _, inv = live
        inv.check_probabilities(np.linspace(0.0, 1.0, 5), where="test")

    def test_clock_regression_raises(self, live):
        sim, inv = live
        inv._last_clock = sim.sim.now + 100.0
        with pytest.raises(InvariantViolation, match="backwards"):
            inv.check_clock()

    def test_shuffle_overflow_raises(self, live):
        sim, inv = live
        job = sim.tracker.active_jobs[0]
        task = job.reduces[0]
        bound = float(np.asarray(job.I, dtype=np.float64).sum(axis=0)[0])
        task._fetch = types.SimpleNamespace(fetched=bound * 2.0 + 10.0)
        with pytest.raises(InvariantViolation, match="exceeds"):
            inv.check_shuffle(job)

    def test_shuffle_within_bound_passes(self, live):
        sim, inv = live
        inv.check_shuffle(sim.tracker.active_jobs[0])

    def test_reduce_colocation_raises_under_pna(self, live):
        sim, inv = live
        job = sim.tracker.active_jobs[0]
        job._reduce_node_counts["r0n0"] = 2
        with pytest.raises(InvariantViolation, match="co-location"):
            inv.check_colocation(job)

    def test_colocation_ignored_for_permissive_scheduler(self):
        sim = tiny_sim(check=True, scheduler=FairScheduler())
        sim.tracker.start()
        sim.sim.run(until=30.0)
        inv = sim.tracker.invariants
        job = sim.tracker.active_jobs[0]
        job._reduce_node_counts["r0n0"] = 2
        # FairScheduler makes no Algorithm-2 promise: nothing to enforce
        inv.check_colocation(job)

    def test_after_heartbeat_catches_corruption(self, live):
        sim, inv = live
        sim.cluster.nodes[-1].running_maps = -3
        with pytest.raises(InvariantViolation):
            inv.after_heartbeat()


def test_checker_detects_colocation_promise():
    sim_pna = tiny_sim(check=True)
    assert InvariantChecker(sim_pna.tracker)._no_colocation is True
    sim_fair = tiny_sim(check=True, scheduler=FairScheduler())
    assert InvariantChecker(sim_fair.tracker)._no_colocation is False
