"""Smoke tests: the fast example scripts run and print what they promise."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


class TestFastExamples:
    def test_paper_worked_example(self):
        out = run_example("paper_worked_example.py")
        # the paper's quoted numbers
        assert "256" in out          # M1 on D3: 128 x 2
        assert "100 + 100 = 200" in out
        assert "P_min = 0.4" in out

    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "jobs completed: 10" in out
        assert "map slot utilisation" in out

    def test_acceptance_theory(self):
        out = run_example("acceptance_theory.py")
        assert "accept rate" in out
        assert "highest feasible P_min" in out


class TestExampleFilesExist:
    @pytest.mark.parametrize("name", [
        "quickstart.py",
        "scheduler_comparison.py",
        "nas_storage.py",
        "paper_worked_example.py",
        "congestion_sweep.py",
        "acceptance_theory.py",
        "heterogeneous_speculation.py",
        "multi_tenant_trace.py",
    ])
    def test_present_and_documented(self, name):
        path = EXAMPLES / name
        assert path.exists()
        text = path.read_text()
        assert text.startswith("#!/usr/bin/env python")
        assert '"""' in text.split("\n", 1)[1][:10]
