"""Tests for the ``repro.lint`` static-analysis suite.

Every rule gets at least one positive fixture (the rule fires on the
hazard it documents) and one negative fixture (the idiomatic replacement
passes), plus suppression, configuration and CLI coverage.  The in-memory
``lint_sources`` entry point keeps the fixtures self-contained: each is a
``(display_path, scope_path, source)`` triple, where the scope path decides
whether the file counts as simulation-critical.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lint import (
    ALL_RULES,
    LintConfig,
    Violation,
    lint_paths,
    lint_sources,
)
from repro.lint.config import DEFAULT_DETERMINISTIC_DIRS
from repro.lint.runner import main as lint_main
from repro.lint.suppress import suppressions, unknown_waiver_rules

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

#: scope inside a deterministic sub-package — determinism rules apply.
ENGINE = Path("repro/engine/mod.py")
#: scope outside the deterministic sub-packages — they do not.
DRIVER = Path("repro/analysis/mod.py")


def run_lint(source, scope=ENGINE, config=None):
    return lint_sources([("mod.py", scope, source)], config)


def rules(violations):
    return sorted({v.rule for v in violations})


# ----------------------------------------------------------------------
# global-rng
# ----------------------------------------------------------------------
class TestGlobalRng:
    def test_stdlib_random_flagged(self):
        src = "import random\nx = random.random()\n"
        assert rules(run_lint(src)) == ["global-rng"]

    def test_numpy_global_state_flagged(self):
        src = "import numpy as np\nnp.random.seed(42)\ny = np.random.rand(3)\n"
        assert [v.rule for v in run_lint(src)] == ["global-rng", "global-rng"]

    def test_from_import_alias_flagged(self):
        src = "from numpy.random import shuffle as sh\nsh([1, 2])\n"
        assert rules(run_lint(src)) == ["global-rng"]

    def test_injected_generator_ok(self):
        src = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator):\n"
            "    return rng.random()\n"
        )
        assert run_lint(src) == []

    def test_outside_deterministic_scope_ok(self):
        src = "import random\nx = random.random()\n"
        assert run_lint(src, scope=DRIVER) == []


# ----------------------------------------------------------------------
# wallclock
# ----------------------------------------------------------------------
class TestWallclock:
    def test_time_time_flagged(self):
        src = "import time\nt = time.time()\n"
        assert rules(run_lint(src)) == ["wallclock"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert rules(run_lint(src)) == ["wallclock"]

    def test_perf_counter_from_import_flagged(self):
        src = "from time import perf_counter\nt = perf_counter()\n"
        assert rules(run_lint(src)) == ["wallclock"]

    def test_simulated_clock_ok(self):
        src = "def f(sim):\n    return sim.now\n"
        assert run_lint(src) == []

    def test_outside_deterministic_scope_ok(self):
        src = "import time\nt = time.time()\n"
        assert run_lint(src, scope=DRIVER) == []


# ----------------------------------------------------------------------
# unseeded-rng / hidden-seed
# ----------------------------------------------------------------------
class TestRngConstruction:
    def test_unseeded_default_rng_flagged_even_outside_scope(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules(run_lint(src, scope=DRIVER)) == ["unseeded-rng"]

    def test_constant_seed_flagged_in_library_code(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert rules(run_lint(src)) == ["hidden-seed"]

    def test_constant_seed_seedsequence_flagged(self):
        src = "from numpy.random import SeedSequence\nss = SeedSequence(7)\n"
        assert rules(run_lint(src)) == ["hidden-seed"]

    def test_injected_seed_ok(self):
        src = (
            "import numpy as np\n"
            "def build(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert run_lint(src) == []

    def test_constant_seed_ok_outside_library_scope(self):
        src = "import numpy as np\nrng = np.random.default_rng(0)\n"
        assert run_lint(src, scope=DRIVER) == []


# ----------------------------------------------------------------------
# magic-unit
# ----------------------------------------------------------------------
class TestMagicUnit:
    def test_decimal_factor_flagged(self):
        assert rules(run_lint("x = b / 1e9\n")) == ["magic-unit"]

    def test_binary_size_arithmetic_flagged(self):
        assert rules(run_lint("cap = 128 * 1024 * 1024\n")) == ["magic-unit"]

    def test_power_and_shift_forms_flagged(self):
        vs = run_lint("a = 2 ** 30\nb = 1 << 20\nc = 1024 ** 3\n")
        assert [v.rule for v in vs] == ["magic-unit"] * 3

    def test_applies_outside_deterministic_scope_too(self):
        assert rules(run_lint("x = 4 * 1e6\n", scope=DRIVER)) == ["magic-unit"]

    def test_named_constants_ok(self):
        src = "from repro.units import GB\nx = 5 * GB\n"
        assert run_lint(src) == []

    def test_unrelated_arithmetic_ok(self):
        assert run_lint("x = 3 * 7\ny = 10 ** 2\nz = 1 << 4\n") == []


# ----------------------------------------------------------------------
# scheduler contracts (whole-project rules)
# ----------------------------------------------------------------------
INIT_SCOPE = Path("repro/schedulers/__init__.py")
SCHED_SCOPE = Path("repro/schedulers/mine.py")

GOOD_SCHEDULER = (
    "class MyScheduler(TaskScheduler):\n"
    '    name = "mine"\n'
    "\n"
    "    def select_map(self, node, job, ctx):\n"
    "        return None\n"
    "\n"
    "    def select_reduce(self, node, job, ctx):\n"
    "        return None\n"
)


def run_contract(sched_source, exported=()):
    init_src = "__all__ = [" + ", ".join(repr(e) for e in exported) + "]\n"
    return lint_sources(
        [
            ("schedulers/__init__.py", INIT_SCOPE, init_src),
            ("schedulers/mine.py", SCHED_SCOPE, sched_source),
        ]
    )


class TestSchedulerContracts:
    def test_conforming_scheduler_clean(self):
        assert run_contract(GOOD_SCHEDULER, exported=("MyScheduler",)) == []

    def test_missing_hooks_flagged(self):
        src = 'class MyScheduler(TaskScheduler):\n    name = "mine"\n'
        vs = run_contract(src, exported=("MyScheduler",))
        assert [v.rule for v in vs] == ["scheduler-hooks", "scheduler-hooks"]
        assert "select_map" in vs[0].message
        assert "select_reduce" in vs[1].message

    def test_hooks_inherited_through_chain_ok(self):
        src = GOOD_SCHEDULER + (
            "\n\nclass Derived(MyScheduler):\n    name = \"derived\"\n"
        )
        assert run_contract(src, exported=("MyScheduler", "Derived")) == []

    def test_missing_name_flagged(self):
        src = (
            "class MyScheduler(TaskScheduler):\n"
            "    def select_map(self, node, job, ctx):\n"
            "        return None\n"
            "\n"
            "    def select_reduce(self, node, job, ctx):\n"
            "        return None\n"
        )
        vs = run_contract(src, exported=("MyScheduler",))
        assert rules(vs) == ["scheduler-name"]

    def test_missing_export_flagged(self):
        vs = run_contract(GOOD_SCHEDULER, exported=())
        assert rules(vs) == ["scheduler-export"]

    def test_private_subclass_needs_no_export(self):
        src = GOOD_SCHEDULER.replace("MyScheduler", "_Hidden")
        assert run_contract(src) == []

    def test_ctx_mutation_flagged(self):
        src = (
            "class MyScheduler(TaskScheduler):\n"
            '    name = "mine"\n'
            "\n"
            "    def select_map(self, node, job, ctx):\n"
            "        ctx.rng = None\n"
            "        return None\n"
            "\n"
            "    def select_reduce(self, node, job, ctx):\n"
            "        return None\n"
        )
        vs = run_contract(src, exported=("MyScheduler",))
        assert rules(vs) == ["ctx-mutation"]
        assert "ctx.rng" in vs[0].message

    def test_ctx_mutation_by_annotation_flagged(self):
        src = (
            "class MyScheduler(TaskScheduler):\n"
            '    name = "mine"\n'
            "\n"
            "    def select_map(self, node, job, context: SchedulerContext):\n"
            "        context.tracker = None\n"
            "        return None\n"
            "\n"
            "    def select_reduce(self, node, job, ctx):\n"
            "        return None\n"
        )
        vs = run_contract(src, exported=("MyScheduler",))
        assert rules(vs) == ["ctx-mutation"]

    def test_ctx_reads_ok(self):
        src = (
            "class MyScheduler(TaskScheduler):\n"
            '    name = "mine"\n'
            "\n"
            "    def select_map(self, node, job, ctx):\n"
            "        free = ctx.free_map_nodes()\n"
            "        return None if not free else None\n"
            "\n"
            "    def select_reduce(self, node, job, ctx):\n"
            "        return None\n"
        )
        assert run_contract(src, exported=("MyScheduler",)) == []


# ----------------------------------------------------------------------
# no-print
# ----------------------------------------------------------------------
class TestNoPrint:
    def test_print_call_flagged(self):
        assert rules(run_lint('print("hello")\n')) == ["no-print"]

    def test_flagged_anywhere_in_the_tree(self):
        src = "def report(x):\n    print(x)\n"
        assert rules(run_lint(src, scope=DRIVER)) == ["no-print"]

    def test_excluded_entry_points_may_print(self):
        src = 'print("usage: ...")\n'
        cli = Path("repro/cli.py")
        assert run_lint(src, scope=cli) == []

    def test_exclusion_is_configurable(self):
        config = LintConfig(no_print_exclude=("repro/analysis/mod.py",))
        assert run_lint('print("x")\n', scope=DRIVER, config=config) == []
        assert rules(run_lint('print("x")\n', config=config)) == ["no-print"]

    def test_shadowed_print_is_not_flagged(self):
        src = "def emit(print):\n    print('x')\n"
        assert run_lint(src) == []

    def test_method_named_print_is_not_flagged(self):
        assert run_lint("dev.print('x')\n") == []

    def test_marker_waives(self):
        src = 'print("dbg")  # repro: lint-ok[no-print]\n'
        assert run_lint(src) == []

    def test_pyproject_key_parsed(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\n"
            'no-print-exclude = ["repro/tools/dump.py"]\n',
            encoding="utf-8",
        )
        config = LintConfig.load(tmp_path)
        assert config.no_print_exclude == ("repro/tools/dump.py",)


# ----------------------------------------------------------------------
# unknown-reason (closed decline/failure vocabularies)
# ----------------------------------------------------------------------
class TestUnknownReason:
    def test_vocabulary_literals_pass(self):
        src = (
            'ctx.note_decline("below_pmin")\n'
            'collector.offer_declined("map", "blacklisted")\n'
            'Decline(t=0.0, node="n", kind="map", reason="node_dead", job_id="")\n'
            'job.fail("attempts_exhausted")\n'
            'NodeDown(t=0.0, node="n", reason="expired", killed_attempts=0, '
            "lost_maps=0)\n"
        )
        assert run_lint(src) == []

    def test_typo_in_decline_reason_flagged(self):
        vs = run_lint('ctx.note_decline("below_pmim")\n')
        assert rules(vs) == ["unknown-reason"]
        assert "DECLINE_REASONS" in vs[0].message

    def test_offer_declined_positional_reason_checked(self):
        vs = run_lint('collector.offer_declined("map", "blacklistd")\n')
        assert rules(vs) == ["unknown-reason"]

    def test_event_keyword_reasons_checked(self):
        src = (
            'AttemptFailed(t=0.0, node="n", kind="map", job_id="j", '
            'task_index=0, reason="task_eror", failures=1)\n'
            'JobFail(t=0.0, job_id="j", reason="gave_up")\n'
            'NodeDown(t=0.0, node="n", reason="vanished", killed_attempts=0, '
            "lost_maps=0)\n"
        )
        vs = run_lint(src)
        assert [v.rule for v in vs] == ["unknown-reason"] * 3

    def test_job_fail_string_literal_checked(self):
        vs = run_lint('job.fail("out_of_retries")\n')
        assert rules(vs) == ["unknown-reason"]
        # fail() with a non-string (or no) argument is someone else's fail()
        assert run_lint("attempt.fail()\n") == []
        assert run_lint("thing.fail(5)\n") == []

    def test_dynamic_reasons_out_of_scope(self):
        assert run_lint("ctx.note_decline(reason_var)\n") == []
        assert run_lint("ctx.note_decline(BELOW_PMIN)\n") == []

    def test_applies_outside_deterministic_scope(self):
        # the vocabulary is global: drivers and exporters must honour it too
        vs = run_lint('ctx.note_decline("nonsense")\n', scope=DRIVER)
        assert rules(vs) == ["unknown-reason"]

    def test_waiver_and_ignore(self):
        waived = 'ctx.note_decline("custom")  # repro: lint-ok[unknown-reason]\n'
        assert run_lint(waived) == []
        config = LintConfig(ignore=("unknown-reason",))
        assert run_lint('ctx.note_decline("custom")\n', config=config) == []


# ----------------------------------------------------------------------
# suppression markers
# ----------------------------------------------------------------------
class TestSuppression:
    def test_marker_waives_matching_rule(self):
        src = "x = b / 1e9  # repro: lint-ok[magic-unit]\n"
        assert run_lint(src) == []

    def test_marker_is_rule_specific(self):
        src = "import time\nt = time.time()  # repro: lint-ok[magic-unit]\n"
        assert rules(run_lint(src)) == ["wallclock"]

    def test_wildcard_marker_waives_everything(self):
        src = "import time\nt = time.time()  # repro: lint-ok[*]\n"
        assert run_lint(src) == []


# ----------------------------------------------------------------------
# the suppression parser, property-tested
# ----------------------------------------------------------------------
RULE_NAME = st.sampled_from(sorted(ALL_RULES))
WS = st.text(alphabet=" \t", max_size=3)


class TestSuppressionParser:
    @given(rules=st.lists(RULE_NAME, min_size=1, max_size=5, unique=True),
           before=WS, after=WS, sep=WS)
    def test_multiple_rules_and_whitespace_all_parse(
        self, rules, before, after, sep
    ):
        marker = (
            f"x = 1  #{before}repro:{sep}lint-ok["
            + f" ,{after}".join(rules)
            + "]"
        )
        waived = suppressions(marker + "\n")
        assert waived == {1: frozenset(rules)}

    @given(rules=st.lists(RULE_NAME, min_size=1, max_size=4, unique=True),
           trailer=st.text(
               alphabet=st.characters(
                   blacklist_characters="[]\n\r", max_codepoint=0x7E
               ),
               max_size=20,
           ))
    def test_trailing_comment_text_ignored(self, rules, trailer):
        marker = "x = 1  # repro: lint-ok[" + ",".join(rules) + "] " + trailer
        waived = suppressions(marker + "\n")
        assert waived[1] == frozenset(rules)

    @given(lineno=st.integers(min_value=1, max_value=50),
           rule=RULE_NAME)
    def test_marker_line_number_tracked(self, lineno, rule):
        src = "\n" * (lineno - 1) + f"y = 2  # repro: lint-ok[{rule}]\n"
        assert suppressions(src) == {lineno: frozenset([rule])}

    @given(junk=st.text(
        alphabet=st.characters(blacklist_characters="[]\n\r#"),
        max_size=30,
    ))
    def test_lines_without_marker_yield_nothing(self, junk):
        assert suppressions(junk + "\n") == {}

    def test_empty_bracket_is_not_a_waiver(self):
        assert suppressions("x = 1  # repro: lint-ok[]\n") == {}
        assert suppressions("x = 1  # repro: lint-ok[ , ]\n") == {}

    @given(known=st.lists(RULE_NAME, max_size=3, unique=True),
           unknown=st.text(
               alphabet="abcdefghijklmnopqrstuvwxyz-",
               min_size=1, max_size=12,
           ).filter(lambda s: s not in ALL_RULES
                    and s != "parse-error"
                    and not s.startswith(("cache-", "rng-", "vocab-"))))
    def test_unknown_rule_is_reported_known_are_not(self, known, unknown):
        waived = {1: frozenset(known + [unknown])}
        flagged = unknown_waiver_rules(waived, set(ALL_RULES) | {"parse-error"})
        assert flagged == [(1, unknown)]

    @given(prefix=st.sampled_from(["cache-", "rng-", "vocab-"]),
           tail=st.text(alphabet="abcdefghijklmnopqrstuvwxyz",
                        min_size=1, max_size=8))
    def test_sibling_command_prefixes_left_alone(self, prefix, tail):
        waived = {1: frozenset([prefix + tail])}
        assert unknown_waiver_rules(waived, set(ALL_RULES)) == []

    def test_unknown_rule_warning_via_lint(self):
        vs = run_lint("x = 1  # repro: lint-ok[magic-unti]\n")
        assert rules(vs) == ["unknown-waiver"]
        assert "magic-unti" in vs[0].message

    def test_check_family_waivers_not_flagged_by_lint(self):
        src = "x = 1  # repro: lint-ok[cache-missing-bump,rng-ambient]\n"
        assert run_lint(src) == []

    def test_marker_mentioned_in_docstring_not_validated(self):
        src = '"""Use # repro: lint-ok[whatever-rule] to waive."""\n'
        assert run_lint(src) == []


def test_syntax_error_reported_as_parse_error():
    vs = run_lint("def broken(:\n")
    assert [v.rule for v in vs] == ["parse-error"]


def test_violation_format_and_ordering():
    a = Violation(path="a.py", line=3, col=7, rule="magic-unit", message="m")
    b = Violation(path="a.py", line=9, col=1, rule="wallclock", message="w")
    assert a.format() == "a.py:3:7: [magic-unit] m"
    assert sorted([b, a]) == [a, b]


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
class TestConfig:
    def test_select_restricts_rules(self):
        config = LintConfig(select=("magic-unit",))
        src = "import time\nt = time.time()\nx = b / 1e9\n"
        assert rules(run_lint(src, config=config)) == ["magic-unit"]

    def test_ignore_drops_rule(self):
        config = LintConfig(ignore=("magic-unit",))
        assert run_lint("x = b / 1e9\n", config=config) == []

    def test_deterministic_dirs_configurable(self):
        config = LintConfig(deterministic_dirs=("analysis",))
        src = "import time\nt = time.time()\n"
        assert rules(run_lint(src, scope=DRIVER, config=config)) == ["wallclock"]
        assert run_lint(src, scope=ENGINE, config=config) == []

    def test_pyproject_table_parsed(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\n"
            'deterministic-dirs = ["engine"]\n'
            'ignore = ["magic-unit"]\n',
            encoding="utf-8",
        )
        config = LintConfig.load(tmp_path)
        assert config.deterministic_dirs == ("engine",)
        assert config.ignore == ("magic-unit",)
        assert config.source == str(tmp_path / "pyproject.toml")

    def test_repo_pyproject_defines_the_table(self):
        config = LintConfig.load(SRC)
        assert config.source.endswith("pyproject.toml")
        assert config.deterministic_dirs == DEFAULT_DETERMINISTIC_DIRS
        assert config.root == REPO


# ----------------------------------------------------------------------
# CLI/pyproject symmetry: excludes and deterministic scope are resolved
# against the project root, not the invocation directory (regression)
# ----------------------------------------------------------------------
class TestConfigPathSymmetry:
    @pytest.fixture
    def project(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\n"
            'deterministic-dirs = ["engine"]\n'
            'exclude = ["pkg/engine/generated.py"]\n',
            encoding="utf-8",
        )
        pkg = tmp_path / "pkg" / "engine"
        pkg.mkdir(parents=True)
        (pkg / "clock.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        (pkg / "generated.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        return tmp_path

    def test_deterministic_scope_same_from_any_invocation_dir(self, project):
        config = LintConfig.load(project)
        from_root = lint_paths([project / "pkg"], config)
        from_subdir = lint_paths([project / "pkg" / "engine"], config)
        from_file = lint_paths([project / "pkg" / "engine" / "clock.py"], config)
        assert rules(from_root) == ["wallclock"]
        assert rules(from_subdir) == ["wallclock"]
        assert rules(from_file) == ["wallclock"]

    def test_root_relative_exclude_same_from_any_invocation_dir(self, project):
        config = LintConfig.load(project)
        for target in (
            project / "pkg",
            project / "pkg" / "engine",
            project / "pkg" / "engine" / "generated.py",
        ):
            assert not any(
                "generated.py" in v.path for v in lint_paths([target], config)
            )

    def test_absolute_exclude_pattern_matches(self, project):
        config = LintConfig.load(project)
        import dataclasses

        config = dataclasses.replace(
            config,
            exclude=(str(project / "pkg" / "engine" / "generated.py"),),
        )
        assert not any(
            "generated.py" in v.path
            for v in lint_paths([project / "pkg"], config)
        )

    def test_scope_falls_back_outside_the_root(self, tmp_path):
        # a file outside the configured root keeps invocation-relative scope
        config = LintConfig(
            deterministic_dirs=("engine",), root=tmp_path / "elsewhere"
        )
        scoped = config.scope_path(
            tmp_path / "repro" / "engine" / "mod.py",
            Path("repro/engine/mod.py"),
        )
        assert scoped == Path("repro/engine/mod.py")


# ----------------------------------------------------------------------
# whole tree + CLI
# ----------------------------------------------------------------------
class TestWholeTree:
    def test_src_tree_is_clean(self):
        assert lint_paths([SRC]) == []

    def test_cli_exit_zero_on_clean_tree(self, capsys):
        assert lint_main([str(SRC)]) == 0

    def test_cli_exit_one_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "engine"
        bad.mkdir(parents=True)
        (bad / "mod.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        assert lint_main([str(tmp_path)]) == 1
        assert "wallclock" in capsys.readouterr().out

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule in out

    def test_cli_rejects_unknown_rule(self, capsys):
        assert lint_main(["--select", "bogus", str(SRC)]) == 2

    def test_cli_missing_path(self, capsys):
        assert lint_main([str(SRC / "no-such-dir")]) == 2

    def test_cli_exit_two_on_parse_error(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def broken(:\n", encoding="utf-8")
        assert lint_main([str(tmp_path)]) == 2
        assert "parse-error" in capsys.readouterr().out

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "engine"
        bad.mkdir(parents=True)
        (bad / "mod.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        assert lint_main(["--format", "json", str(tmp_path)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro-lint"
        assert doc["summary"]["total"] == 1
        assert doc["summary"]["by_rule"] == {"wallclock": 1}
        assert doc["violations"][0]["rule"] == "wallclock"

    def test_cli_json_format_clean_tree(self, capsys):
        assert lint_main(["--format", "json", str(SRC)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["violations"] == []

    def test_python_dash_m_entry_point(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(SRC)],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
