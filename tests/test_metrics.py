"""Unit tests for metrics records, the collector, and analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ascii_cdf,
    ecdf,
    ecdf_at,
    format_cdf_points,
    format_table,
    fraction_above,
    quantile,
    reduction_percent,
)
from repro.metrics import JobRecord, MetricsCollector, TaskRecord


def tr(job="01", kind="map", index=0, node="n0", start=0.0, end=10.0,
       locality="node", bytes_in=100.0, bytes_moved=0.0, cost=0.0):
    return TaskRecord(job, kind, index, node, start, end, locality,
                      bytes_in, bytes_moved, cost)


def jr(job="01", name="j", app="grep", submit=0.0, finish=100.0,
       maps=4, reduces=2, input_size=1e9, shuffle=1e8):
    return JobRecord(job, name, app, submit, finish, maps, reduces,
                     input_size, shuffle)


class TestRecords:
    def test_task_duration(self):
        assert tr(start=5.0, end=12.5).duration == 7.5

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            tr(kind="shuffle")

    def test_bad_locality_rejected(self):
        with pytest.raises(ValueError):
            tr(locality="nearby")

    def test_time_travel_rejected(self):
        with pytest.raises(ValueError):
            tr(start=10.0, end=5.0)
        with pytest.raises(ValueError):
            jr(submit=10.0, finish=5.0)

    def test_job_completion_time(self):
        assert jr(submit=10.0, finish=110.0).completion_time == 100.0


class TestCollector:
    def make(self):
        c = MetricsCollector()
        c.job_submitted("01", 0.0)
        c.job_submitted("02", 5.0)
        c.task_completed(tr(job="01", kind="map", index=0, start=0, end=10,
                            locality="node"))
        c.task_completed(tr(job="01", kind="map", index=1, start=2, end=14,
                            locality="rack", bytes_moved=100.0, cost=200.0))
        c.task_completed(tr(job="01", kind="reduce", index=0, start=10,
                            end=30, locality="remote", bytes_moved=50.0))
        c.job_completed(jr(job="01", finish=30.0))
        c.job_completed(jr(job="02", submit=5.0, finish=20.0))
        return c

    def test_job_completion_times_sorted_by_id(self):
        c = self.make()
        assert np.allclose(c.job_completion_times(), [30.0, 15.0])
        assert c.job_ids() == ["01", "02"]

    def test_task_durations(self):
        c = self.make()
        assert np.allclose(sorted(c.task_durations("map")), [10.0, 12.0])
        assert np.allclose(c.task_durations("reduce"), [20.0])
        with pytest.raises(ValueError):
            c.task_durations("shuffle")

    def test_locality_shares(self):
        c = self.make()
        shares = c.locality_shares()
        assert shares["node"] == pytest.approx(1 / 3)
        assert shares["rack"] == pytest.approx(1 / 3)
        assert shares["remote"] == pytest.approx(1 / 3)
        map_shares = c.locality_shares("map")
        assert map_shares["node"] == pytest.approx(0.5)
        assert map_shares["remote"] == 0.0

    def test_empty_locality_shares(self):
        shares = MetricsCollector().locality_shares()
        assert shares == {"node": 0.0, "rack": 0.0, "remote": 0.0}

    def test_bytes_and_cost_totals(self):
        c = self.make()
        assert c.bytes_moved() == 150.0
        assert c.total_cost() == 200.0

    def test_makespan(self):
        c = self.make()
        assert c.makespan() == 30.0
        assert MetricsCollector().makespan() == 0.0

    def test_makespan_falls_back_to_earliest_task_start(self):
        # no job_submitted() calls, but tasks were recorded: anchor on the
        # earliest task start instead of returning a bogus end-of-run value
        c = MetricsCollector()
        c.task_completed(tr(index=0, start=4.0, end=10.0))
        c.task_completed(tr(index=1, start=2.0, end=30.0))
        assert c.makespan() == 28.0

    def test_makespan_falls_back_to_job_submit_times(self):
        c = MetricsCollector()
        c.job_completed(jr(job="01", submit=3.0, finish=23.0))
        assert c.makespan() == 20.0

    def test_offer_declined_reason_accounting(self):
        c = MetricsCollector()
        c.offer_declined()  # defaults: map / no_candidate
        c.offer_declined("map", "below_pmin")
        c.offer_declined("reduce", "colocation_veto")
        c.offer_declined("reduce", "colocation_veto")
        assert c.scheduling_declines == 4
        assert c.declines_by_reason() == {
            ("map", "no_candidate"): 1,
            ("map", "below_pmin"): 1,
            ("reduce", "colocation_veto"): 2,
        }
        assert c.declines_by_reason("reduce") == {
            ("reduce", "colocation_veto"): 2,
        }

    def test_offer_declined_rejects_unknown_kind(self):
        c = MetricsCollector()
        with pytest.raises(ValueError):
            c.offer_declined("shuffle", "no_candidate")
        with pytest.raises(ValueError):
            c.declines_by_reason("shuffle")

    def test_occupancy_series(self):
        c = MetricsCollector()
        c.task_completed(tr(index=0, start=0, end=10))
        c.task_completed(tr(index=1, start=5, end=15))
        times, levels = c.occupancy_series("map")
        assert list(times) == [0, 5, 10, 15]
        assert list(levels) == [1, 2, 1, 0]

    def test_occupancy_merges_simultaneous_events(self):
        c = MetricsCollector()
        c.task_completed(tr(index=0, start=0, end=10))
        c.task_completed(tr(index=1, start=0, end=10))
        times, levels = c.occupancy_series("map")
        assert list(times) == [0, 10]
        assert list(levels) == [2, 0]

    def test_mean_utilisation(self):
        c = MetricsCollector()
        c.task_completed(tr(index=0, start=0, end=10))
        c.task_completed(tr(index=1, start=10, end=20))
        # one task always running out of 2 slots over [0, 20]
        assert c.mean_utilisation("map", 2) == pytest.approx(0.5)

    def test_utilisation_empty(self):
        assert MetricsCollector().mean_utilisation("map", 4) == 0.0
        with pytest.raises(ValueError):
            MetricsCollector().mean_utilisation("map", 0)


class TestAnalysisCDF:
    def test_ecdf_simple(self):
        xs, ps = ecdf(np.array([3.0, 1.0, 2.0, 2.0]))
        assert list(xs) == [1.0, 2.0, 3.0]
        assert np.allclose(ps, [0.25, 0.75, 1.0])

    def test_ecdf_rejects_empty_and_nan(self):
        with pytest.raises(ValueError):
            ecdf(np.array([]))
        with pytest.raises(ValueError):
            ecdf(np.array([1.0, np.nan]))

    def test_ecdf_at(self):
        arr = np.array([1.0, 2.0, 3.0, 4.0])
        assert ecdf_at(arr, 2.5) == 0.5
        assert ecdf_at(arr, 0.0) == 0.0
        assert ecdf_at(arr, 4.0) == 1.0

    def test_quantile(self):
        arr = np.array([1.0, 2.0, 3.0, 4.0])
        assert quantile(arr, 0.5) in (2.0, 3.0)
        assert quantile(arr, 1.0) == 4.0
        with pytest.raises(ValueError):
            quantile(arr, 1.5)

    def test_fraction_above(self):
        arr = np.array([1.0, 2.0, 3.0])
        assert fraction_above(arr, 1.5) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            fraction_above(np.array([]), 1.0)

    def test_reduction_percent(self):
        base = np.array([100.0, 200.0])
        ours = np.array([50.0, 300.0])
        r = reduction_percent(base, ours)
        assert np.allclose(r, [50.0, -50.0])

    def test_reduction_shape_mismatch(self):
        with pytest.raises(ValueError):
            reduction_percent(np.array([1.0]), np.array([1.0, 2.0]))

    def test_reduction_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            reduction_percent(np.array([0.0]), np.array([1.0]))


class TestRendering:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 44]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "--" in lines[1]
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # uniform width

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_ascii_cdf_renders_all_series(self):
        out = ascii_cdf(
            {"a": np.array([1.0, 2.0]), "b": np.array([2.0, 4.0])},
            width=32, height=8,
        )
        assert "*=a" in out and "o=b" in out
        assert "1.00 |" in out and "0.00 |" in out

    def test_ascii_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({})

    def test_format_cdf_points(self):
        pts = format_cdf_points(np.array([1.0, 2.0, 3.0, 4.0]), [2.0, 5.0])
        assert pts == [(2.0, 0.5), (5.0, 1.0)]
