"""Behaviour-invisibility tests for the scheduler hot-path caches (PR 4).

The caches (epoch-keyed rate matrices, job/cluster index views, vectorised
estimation) must be pure accelerations: a run with caching enabled and the
same run with ``REPRO_NO_CACHE=1`` (which routes every call through the
original naive code paths) have to produce byte-identical traces.  The flag
is read once at construction time, so each comparison builds a fresh
simulation under ``monkeypatch``-controlled environment.

Also covered here, white-box: the rate-matrix epoch cache itself, the
free-slot views, the O(1) ``Simulator.pending`` counter with heap
compaction (satellite of this PR), and the zero-rate guard in
``FlowNetwork._schedule_next``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro import ClusterSpec, EngineConfig, Simulation, table2_batch
from repro.cluster.network import FlowNetwork
from repro.cluster.topology import rack_topology
from repro.core import PNAConfig, ProbabilisticNetworkAwareScheduler
from repro.faults import FaultPlan, NodeChurn
from repro.sim import Simulator
from repro.units import MB, Gbps

# ---------------------------------------------------------------------------
# end-to-end: cached and naive runs emit byte-identical traces
# ---------------------------------------------------------------------------


def run_traced(tmp_path, tag, *, netcond, churn):
    trace = tmp_path / f"{tag}.jsonl"
    config = EngineConfig(trace_jsonl=str(trace))
    if churn:
        config = replace(
            config,
            faults=FaultPlan(churn=NodeChurn(level=0.3, mean_downtime=60.0)),
            tracker_expiry_interval=15.0,
        )
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=ProbabilisticNetworkAwareScheduler(
            PNAConfig(network_condition=netcond)
        ),
        jobs=table2_batch("wordcount", scale=0.02)[:4],
        config=config,
        seed=123,
    )
    result = sim.run()
    return trace.read_bytes(), result


@pytest.mark.parametrize("variant", ["hop", "netcond", "netcond_churn"])
def test_same_seed_trace_identical_with_and_without_caches(
    tmp_path, monkeypatch, variant
):
    netcond = variant != "hop"
    churn = variant == "netcond_churn"

    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    cached_bytes, cached_result = run_traced(
        tmp_path, "cached", netcond=netcond, churn=churn
    )
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    naive_bytes, _ = run_traced(tmp_path, "naive", netcond=netcond, churn=churn)

    assert cached_bytes, "trace was empty — nothing was compared"
    assert cached_bytes == naive_bytes
    if churn:
        # the fault plan must actually fire, otherwise this variant never
        # exercises epoch invalidation under node loss
        assert cached_result.collector.nodes_lost > 0


# ---------------------------------------------------------------------------
# rate-matrix epoch cache
# ---------------------------------------------------------------------------


def make_net(racks=2, per_rack=3):
    sim = Simulator()
    topo = rack_topology(racks, per_rack, host_link=1 * Gbps, tor_uplink=10 * Gbps)
    return sim, FlowNetwork(sim, topo, local_bandwidth=400 * MB)


class TestRateMatrixCache:
    def test_matches_uncached_under_live_flows(self):
        sim, net = make_net()
        net.start_flow("r0n0", "r1n0", 1 * Gbps)
        net.start_flow("r0n1", "r1n1", 1 * Gbps)
        net.start_flow("r0n0", "r0n2", 1 * Gbps)
        assert np.array_equal(net.rate_matrix(), net._rate_matrix_uncached())

    def test_cache_hit_returns_same_object(self):
        sim, net = make_net()
        first = net.rate_matrix()
        assert net.rate_matrix() is first
        with pytest.raises(ValueError):
            first[0, 1] = 0.0  # cached matrix is frozen

    def test_flow_attach_and_detach_bump_epoch(self):
        sim, net = make_net()
        before = net.epoch
        flow = net.start_flow("r0n0", "r1n0", 1 * Gbps)
        attached = net.epoch
        assert attached > before
        net.cancel_flow(flow)
        assert net.epoch > attached

    def test_invalidated_after_flow_change(self):
        sim, net = make_net()
        idle = net.rate_matrix()
        flow = net.start_flow("r0n0", "r1n0", 1 * Gbps)
        loaded = net.rate_matrix()
        assert loaded is not idle
        assert np.array_equal(loaded, net._rate_matrix_uncached())
        net.cancel_flow(flow)
        assert np.array_equal(net.rate_matrix(), idle)

    def test_invalidated_after_capacity_change(self):
        sim, net = make_net()
        idle = net.rate_matrix()
        link = net.topology.route("r0n0", "r1n0")[0]
        net.set_capacity_factor(link, 0.5)
        degraded = net.rate_matrix()
        assert degraded is not idle
        assert np.array_equal(degraded, net._rate_matrix_uncached())
        assert not np.array_equal(degraded, idle)


# ---------------------------------------------------------------------------
# free-slot views
# ---------------------------------------------------------------------------


class TestSlotViews:
    def make_cluster(self):
        sim = Simulator()
        return ClusterSpec(num_racks=2, nodes_per_rack=3).build(sim)

    def test_view_matches_list_api(self):
        cluster = self.make_cluster()
        nodes, idx, pos = cluster.free_map_slot_view()
        assert list(nodes) == cluster.nodes_with_free_map_slots()
        assert [cluster.nodes[i].name for i in idx] == [n.name for n in nodes]
        for row, i in enumerate(idx):
            assert pos[i] == row
        with pytest.raises(ValueError):
            idx[0] = 0  # views are frozen

    def test_slot_transition_invalidates_view(self):
        cluster = self.make_cluster()
        _, idx_before, _ = cluster.free_map_slot_view()
        node = cluster.nodes[0]
        node.running_maps = node.map_slots  # fills the node: no free slot
        _, idx_after, pos_after = cluster.free_map_slot_view()
        assert node.index in idx_before
        assert node.index not in idx_after
        assert pos_after[node.index] == -1

    def test_alive_toggle_invalidates_view(self):
        cluster = self.make_cluster()
        node = cluster.nodes[0]
        assert node.index in cluster.free_reduce_slot_view()[1]
        node.alive = False
        assert node.index not in cluster.free_reduce_slot_view()[1]


# ---------------------------------------------------------------------------
# Simulator.pending counter + heap compaction (satellite)
# ---------------------------------------------------------------------------


class TestPendingCounter:
    def test_pending_tracks_push_pop_cancel(self):
        sim = Simulator()
        events = [sim.at(float(i + 1), lambda: None) for i in range(6)]
        assert sim.pending == 6
        events[0].cancel()
        events[0].cancel()  # idempotent: must not double-count
        assert sim.pending == 5
        sim.run(until=3.0)  # fires t=2 and t=3 (t=1 was cancelled)
        assert sim.pending == 3

    def test_compaction_bounds_the_heap(self):
        sim = Simulator()
        doomed = [sim.at(1000.0 + i, lambda: None) for i in range(200)]
        survivors = [sim.at(1.0 + i, lambda: None) for i in range(10)]
        for event in doomed:
            event.cancel()
        # tombstones far outnumber the 10 live events -> heap was rebuilt
        assert sim.pending == 10
        assert len(sim._queue) <= sim.pending + 64
        fired = []
        for event in survivors:
            event.callback = lambda t=event.time: fired.append(t)
        sim.run()
        assert fired == sorted(e.time for e in survivors)

    def test_compaction_preserves_pop_order(self):
        sim = Simulator()
        fired = []
        for i in range(300):
            sim.at(float(i), fired.append, float(i))
        # cancel every odd event to force at least one compaction
        cancelled = set()
        for _, _, event in list(sim._queue):
            if int(event.time) % 2 == 1:
                event.cancel()
                cancelled.add(event.time)
        sim.run()
        expected = [float(i) for i in range(300) if float(i) not in cancelled]
        assert fired == expected


# ---------------------------------------------------------------------------
# zero-rate guard in the fabric tick (satellite)
# ---------------------------------------------------------------------------


class TestZeroRateGuard:
    def test_stalled_flow_does_not_poison_the_horizon(self):
        sim, net = make_net()
        net.start_flow("r0n0", "r0n1", 1 * Gbps)
        net.start_flow("r1n0", "r1n1", 1 * Gbps)
        sim.run(until=0.0)  # process the zero-delay refill tick
        # simulate a flow stalled at exactly rate 0 (e.g. a capacity factor
        # driven to underflow): the tick must ignore it rather than divide
        net._rates[0] = 0.0
        with np.errstate(divide="raise", invalid="raise"):
            net._schedule_next()

    def test_all_flows_stalled_is_an_invariant_violation(self):
        sim, net = make_net()
        net.start_flow("r0n0", "r0n1", 1 * Gbps)
        sim.run(until=0.0)  # process the zero-delay refill tick
        net._rates[0] = 0.0
        with pytest.raises(AssertionError):
            net._schedule_next()
