"""White-box tests of delay scheduling (FairScheduler map path).

Built on a live engine paused after submission, with slot offers driven by
hand so skip counters and locality levels are fully controlled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation
from repro.hdfs import SubsetPlacement
from repro.schedulers import FairScheduler
from repro.units import MB
from repro.workload import JobSpec


def paused_state(scheduler, *, placement=None, num_maps=6, seed=13):
    spec = JobSpec.make("01", "terasort", num_maps * 64 * MB, num_maps, 2)
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=scheduler,
        jobs=[spec],
        placement=placement,
        seed=seed,
    )
    # submit without starting heartbeats: offers are driven manually
    sim.sim.run(until=1e-9)
    job = sim.tracker.active_jobs[0]
    return sim, job


def node_without_local_blocks(sim, job):
    nn = sim.tracker.namenode
    for node in sim.cluster.nodes:
        if not any(nn.is_local(m.block, node.name) for m in job.pending_maps()):
            return node
    pytest.skip("every node holds some block")


def node_with_local_block(sim, job):
    nn = sim.tracker.namenode
    for node in sim.cluster.nodes:
        if any(nn.is_local(m.block, node.name) for m in job.pending_maps()):
            return node
    pytest.skip("no node holds a block")


class TestDelayMechanics:
    def test_local_offer_accepted_immediately(self):
        sched = FairScheduler(node_delay=100, rack_delay=200)
        sim, job = paused_state(sched)
        node = node_with_local_block(sim, job)
        task = sched.select_map(node, job, sim.tracker.ctx)
        assert task is not None
        assert node.name in task.block.replicas

    def test_nonlocal_offer_skipped_until_threshold(self):
        sched = FairScheduler(node_delay=3, rack_delay=100)
        # confine replicas to two nodes so misses are guaranteed
        sim, job = paused_state(sched, placement=SubsetPlacement(fraction=0.34))
        node = node_without_local_blocks(sim, job)
        ctx = sim.tracker.ctx
        # the first node_delay offers are declined
        assert sched.select_map(node, job, ctx) is None
        assert sched.select_map(node, job, ctx) is None
        assert sched.select_map(node, job, ctx) is None
        # threshold reached: rack-local (or any at rack_delay) now allowed
        result = sched.select_map(node, job, ctx)
        nn = sim.tracker.namenode
        if result is not None:
            assert not nn.is_local(result.block, node.name)

    def test_skip_counter_resets_on_local_launch(self):
        sched = FairScheduler(node_delay=2, rack_delay=100)
        sim, job = paused_state(sched, placement=SubsetPlacement(fraction=0.34))
        far = node_without_local_blocks(sim, job)
        near = node_with_local_block(sim, job)
        ctx = sim.tracker.ctx
        jid = job.spec.job_id
        sched.select_map(far, job, ctx)
        assert sched._skips[jid] == 1
        # a local launch resets the counter
        task = sched.select_map(near, job, ctx)
        assert task is not None
        assert sched._skips[jid] == 0

    def test_rack_delay_unlocks_remote(self):
        sched = FairScheduler(node_delay=1, rack_delay=2)
        sim, job = paused_state(sched, placement=SubsetPlacement(fraction=0.34))
        node = node_without_local_blocks(sim, job)
        ctx = sim.tracker.ctx
        outcomes = [sched.select_map(node, job, ctx) for _ in range(6)]
        # eventually the node gets *some* task even with zero local blocks
        assert any(t is not None for t in outcomes)

    def test_thresholds_default_to_cluster_size(self):
        sched = FairScheduler()
        sim, job = paused_state(sched)
        d1, d2 = sched._thresholds(sim.tracker.ctx)
        assert d1 == sim.cluster.num_nodes
        assert d2 == 2 * sim.cluster.num_nodes

    def test_rack_delay_never_below_node_delay(self):
        sched = FairScheduler(node_delay=50, rack_delay=10)
        sim, job = paused_state(sched)
        d1, d2 = sched._thresholds(sim.tracker.ctx)
        assert d2 >= d1


class TestCandidateSplit:
    def test_levels_partition_pending_maps(self):
        sched = FairScheduler()
        sim, job = paused_state(sched)
        node = sim.cluster.nodes[0]
        local, rack, remote = FairScheduler._candidates_by_level(
            node, job, sim.tracker.ctx
        )
        all_pending = {m.index for m in job.pending_maps()}
        split = {m.index for m in local + rack + remote}
        assert split == all_pending
        nn = sim.tracker.namenode
        for m in local:
            assert nn.is_local(m.block, node.name)
        for m in rack:
            assert not nn.is_local(m.block, node.name)
            assert nn.is_rack_local(m.block, node.name)
        for m in remote:
            assert not nn.is_rack_local(m.block, node.name)
