"""Unit tests for the shuffle FetchManager."""

from __future__ import annotations

import pytest

from repro.cluster.network import FlowNetwork
from repro.cluster.topology import rack_topology
from repro.engine.shuffle import FetchManager
from repro.sim import Simulator
from repro.units import MB, Gbps


def make(max_parallel=2, on_progress=None):
    sim = Simulator()
    topo = rack_topology(2, 3, host_link=1 * Gbps)
    net = FlowNetwork(sim, topo)
    fm = FetchManager(net, dst="r0n0", max_parallel=max_parallel,
                      on_progress=on_progress)
    return sim, net, fm


class TestFetchManager:
    def test_starts_idle(self):
        _, _, fm = make()
        assert fm.idle
        assert fm.pending_bytes == 0.0

    def test_fetches_added_bytes(self):
        sim, net, fm = make()
        fm.add("r0n1", 10 * MB)
        assert not fm.idle
        sim.run()
        assert fm.idle
        assert fm.fetched == pytest.approx(10 * MB)
        assert fm.remote_bytes == pytest.approx(10 * MB)

    def test_local_fetch_not_counted_remote(self):
        sim, net, fm = make()
        fm.add("r0n0", 5 * MB)  # dst == src
        sim.run()
        assert fm.fetched == pytest.approx(5 * MB)
        assert fm.remote_bytes == 0.0

    def test_zero_bytes_skipped(self):
        sim, net, fm = make()
        fm.add("r0n1", 0.0)
        assert fm.idle
        assert fm.fetch_count == 0

    def test_negative_bytes_rejected(self):
        _, _, fm = make()
        with pytest.raises(ValueError):
            fm.add("r0n1", -1.0)

    def test_parallelism_bounded(self):
        sim, net, fm = make(max_parallel=2)
        for i in range(5):
            fm.add(f"r1n{i % 3}", 50 * MB)
        assert fm.active <= 2
        sim.run(until=0.01)
        assert fm.active <= 2

    def test_aggregates_per_source(self):
        """Bytes queued for a busy source coalesce into one later fetch."""
        sim, net, fm = make(max_parallel=1)
        fm.add("r0n1", 10 * MB)   # occupies the single fetcher
        fm.add("r0n2", 5 * MB)
        fm.add("r0n2", 7 * MB)    # aggregates with the pending 5 MB
        assert fm.pending == {"r0n2": 12 * MB}
        sim.run()
        assert fm.fetch_count == 2  # not 3
        assert fm.fetched == pytest.approx(22 * MB)

    def test_progress_callback_fires_per_fetch(self):
        calls = []
        sim, net, fm = make(max_parallel=1, on_progress=lambda: calls.append(1))
        fm.add("r0n1", 1 * MB)
        fm.add("r0n2", 1 * MB)
        sim.run()
        assert len(calls) == 2

    def test_invalid_parallelism(self):
        sim = Simulator()
        topo = rack_topology(1, 2)
        net = FlowNetwork(sim, topo)
        with pytest.raises(ValueError):
            FetchManager(net, dst="r0n0", max_parallel=0)

    def test_fifo_source_order(self):
        """Pending sources drain in insertion order."""
        order = []
        sim, net, fm = make(max_parallel=1)
        fm.add("r0n1", 1 * MB)
        fm.add("r1n0", 1 * MB)
        fm.add("r1n1", 1 * MB)
        # wrap on_progress to record completion order via fetched growth
        seen = []

        def watch():
            seen.append(fm.fetch_count)

        fm.on_progress = watch
        sim.run()
        assert fm.fetch_count == 3
        # _pump starts the next fetch before on_progress fires, so the
        # counter reads 2, 3, 3 across the three completions
        assert seen == [2, 3, 3]


class TestFailurePaths:
    """Keyed fetches, aborts and re-fetches (the fetch-failure path)."""

    def test_abort_reports_pending_and_inflight_keys(self):
        sim, net, fm = make(max_parallel=1)
        fm.add("r0n1", 10 * MB, key=0)   # in flight
        fm.add("r0n2", 5 * MB, key=1)    # pending
        fm.add("r0n2", 7 * MB, key=2)    # aggregates; both keys ride along
        assert sorted(fm.abort_source("r0n2")) == [1, 2]
        assert fm.aborted_bytes == pytest.approx(12 * MB)
        assert fm.abort_source("r0n1") == [0]
        assert fm.idle
        sim.run()
        assert fm.fetched == 0.0         # aborted bytes never credited

    def test_abort_source_is_idempotent(self):
        sim, net, fm = make()
        fm.add("r0n1", 10 * MB, key=0)
        assert fm.abort_source("r0n1") == [0]
        assert fm.abort_source("r0n1") == []
        assert fm.aborted_bytes == pytest.approx(10 * MB)

    def test_abort_frees_the_fetcher_for_pending_work(self):
        sim, net, fm = make(max_parallel=1)
        fm.add("r0n1", 10 * MB, key=0)
        fm.add("r0n2", 5 * MB, key=1)
        fm.abort_source("r0n1")
        assert fm.active == 1            # the pending source was pumped in
        sim.run()
        assert fm.fetched == pytest.approx(5 * MB)

    def test_refetch_conserves_bytes(self):
        sim, net, fm = make(max_parallel=1)
        fm.add("r0n1", 10 * MB, key=0)
        fm.add("r1n0", 4 * MB, key=1)
        sim.run(until=0.001)             # r0n1 in flight, partially copied
        assert fm.abort_source("r0n1") == [0]
        fm.add("r1n1", 10 * MB, key=0)   # the map re-ran elsewhere
        sim.run()
        assert fm.fetched == pytest.approx(14 * MB)
        assert fm.aborted_bytes == pytest.approx(10 * MB)
        assert fm.idle

    def test_abort_all_returns_every_key(self):
        sim, net, fm = make(max_parallel=1)
        fm.add("r0n1", 10 * MB, key=0)
        fm.add("r0n2", 5 * MB, key=1)
        fm.add("r1n0", 5 * MB, key=2)
        assert sorted(fm.abort_all()) == [0, 1, 2]
        assert fm.idle
        sim.run()
        assert fm.fetch_count == 1       # only the first flow ever started
        assert fm.fetched == 0.0
        assert fm.aborted_bytes == pytest.approx(20 * MB)

    def test_on_fetched_callback_delivers_keys(self):
        delivered = []
        sim, net, fm = make(max_parallel=1)
        fm.on_fetched = lambda keys: delivered.extend(keys)
        fm.add("r0n1", 1 * MB, key=0)
        fm.add("r0n2", 1 * MB, key=1)
        fm.add("r0n2", 1 * MB, key=2)
        sim.run()
        assert sorted(delivered) == [0, 1, 2]
        assert fm.fetched == pytest.approx(3 * MB)
