"""Tests for metrics export/import (repro.metrics.export)."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import Simulation
from repro.metrics import (
    MetricsCollector,
    collector_from_json,
    collector_to_json,
    jobs_to_csv,
    tasks_to_csv,
)
from repro.schedulers import RandomScheduler
from repro.units import MB
from repro.workload import JobSpec


@pytest.fixture(scope="module")
def finished_collector():
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=RandomScheduler(),
        jobs=[JobSpec.make("01", "grep", 6 * 64 * MB, 6, 3)],
        seed=8,
    )
    return sim.run().collector


class TestCSVExport:
    def test_tasks_csv_roundtrips_fields(self, finished_collector, tmp_path):
        path = tmp_path / "tasks.csv"
        n = tasks_to_csv(finished_collector, path)
        assert n == 9  # 6 maps + 3 reduces
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 9
        first = rows[0]
        assert first["kind"] in ("map", "reduce")
        assert float(first["end"]) > float(first["start"])
        assert "attempts" in first

    def test_jobs_csv(self, finished_collector, tmp_path):
        path = tmp_path / "jobs.csv"
        n = jobs_to_csv(finished_collector, path)
        assert n == 1
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert rows[0]["job_id"] == "01"
        assert rows[0]["app"] == "grep"


class TestJSONRoundtrip:
    def test_full_roundtrip(self, finished_collector, tmp_path):
        path = tmp_path / "run.json"
        collector_to_json(finished_collector, path)
        loaded = collector_from_json(path)
        assert loaded.task_records == finished_collector.task_records
        assert loaded.job_records == finished_collector.job_records
        assert loaded.submitted == finished_collector.submitted
        assert (
            loaded.scheduling_assignments
            == finished_collector.scheduling_assignments
        )
        assert loaded.decline_reasons == finished_collector.decline_reasons
        assert (
            loaded.declines_by_reason()
            == finished_collector.declines_by_reason()
        )

    def test_decline_reasons_roundtrip(self, tmp_path):
        collector = MetricsCollector()
        collector.offer_declined("map", "locality_wait")
        collector.offer_declined("reduce", "colocation_veto")
        collector.offer_declined("reduce", "colocation_veto")
        path = tmp_path / "declines.json"
        collector_to_json(collector, path)
        loaded = collector_from_json(path)
        assert loaded.scheduling_declines == 3
        assert loaded.declines_by_reason() == {
            ("map", "locality_wait"): 1,
            ("reduce", "colocation_veto"): 2,
        }

    def test_loaded_collector_supports_analysis(self, finished_collector, tmp_path):
        path = tmp_path / "run.json"
        collector_to_json(finished_collector, path)
        loaded = collector_from_json(path)
        assert np.allclose(
            loaded.job_completion_times(),
            finished_collector.job_completion_times(),
        )
        assert loaded.locality_shares() == finished_collector.locality_shares()

    def test_json_is_valid(self, finished_collector, tmp_path):
        path = tmp_path / "run.json"
        collector_to_json(finished_collector, path)
        with open(path) as fh:
            payload = json.load(fh)
        assert set(payload) >= {"tasks", "jobs", "submitted"}
