"""Integration tests for the MapReduce engine (repro.engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec
from repro.engine import EngineConfig, Simulation, TaskState
from repro.schedulers import FairScheduler, RandomScheduler
from repro.sim import SimulationError
from repro.units import GB, MB
from repro.workload import JobSpec, table2_batch


def simple_sim(scheduler=None, *, num_maps=8, num_reduces=4, config=None,
               app="terasort", seed=5, input_size=None):
    spec = JobSpec.make(
        "01", app,
        input_size if input_size is not None else num_maps * 64 * MB,
        num_maps, num_reduces,
    )
    return Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=scheduler or RandomScheduler(),
        jobs=[spec],
        config=config,
        seed=seed,
    )


class TestSingleJobRun:
    def test_job_completes(self):
        sim = simple_sim()
        result = sim.run()
        assert result.job_completion_times.size == 1
        assert sim.tracker.all_done

    def test_all_tasks_recorded(self):
        sim = simple_sim(num_maps=8, num_reduces=4)
        result = sim.run()
        maps = [t for t in result.collector.task_records if t.kind == "map"]
        reduces = [t for t in result.collector.task_records if t.kind == "reduce"]
        assert len(maps) == 8
        assert len(reduces) == 4

    def test_task_times_ordered(self):
        result = simple_sim().run()
        for t in result.collector.task_records:
            assert t.end > t.start >= 0.0

    def test_job_record_fields(self):
        sim = simple_sim(num_maps=6, num_reduces=3)
        result = sim.run()
        (rec,) = result.collector.job_records
        assert rec.num_maps == 6
        assert rec.num_reduces == 3
        assert rec.app == "terasort"
        assert rec.completion_time > 0

    def test_shuffle_size_recorded(self):
        sim = simple_sim()
        result = sim.run()
        (rec,) = result.collector.job_records
        # terasort shuffles its input byte-for-byte
        assert rec.shuffle_size == pytest.approx(rec.input_size, rel=1e-9)

    def test_reduces_wait_for_all_maps(self):
        sim = simple_sim(num_maps=10, num_reduces=2)
        result = sim.run()
        last_map_end = max(
            t.end for t in result.collector.task_records if t.kind == "map"
        )
        for t in result.collector.task_records:
            if t.kind == "reduce":
                assert t.end >= last_map_end

    def test_slots_all_released(self):
        sim = simple_sim()
        sim.run()
        for node in sim.cluster.nodes:
            assert node.running_maps == 0
            assert node.running_reduces == 0

    def test_byte_conservation_across_tasks(self):
        sim = simple_sim(num_maps=6, num_reduces=3)
        result = sim.run()
        job = sim.tracker.finished_jobs[0]
        shuffled = sum(
            t.bytes_in for t in result.collector.task_records if t.kind == "reduce"
        )
        assert shuffled == pytest.approx(job.I.sum(), rel=1e-6)


class TestSlowstart:
    def test_reduces_gated_until_map_fraction(self):
        config = EngineConfig(slowstart=0.5)
        sim = simple_sim(num_maps=10, num_reduces=2, config=config)
        result = sim.run()
        maps_done_times = sorted(
            t.end for t in result.collector.task_records if t.kind == "map"
        )
        threshold = maps_done_times[4]  # 5th of 10 maps = 50 %
        first_reduce_start = min(
            t.start for t in result.collector.task_records if t.kind == "reduce"
        )
        assert first_reduce_start >= threshold

    def test_zero_slowstart_launches_reduces_early(self):
        config = EngineConfig(slowstart=0.0)
        sim = simple_sim(num_maps=40, num_reduces=4, config=config)
        result = sim.run()
        first_map_end = min(
            t.end for t in result.collector.task_records if t.kind == "map"
        )
        first_reduce_start = min(
            t.start for t in result.collector.task_records if t.kind == "reduce"
        )
        assert first_reduce_start < first_map_end


class TestMultipleJobs:
    def test_batch_completes(self):
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=4),
            scheduler=RandomScheduler(),
            jobs=table2_batch("grep", scale=0.02),
            seed=1,
        )
        result = sim.run()
        assert result.job_completion_times.size == 10

    def test_staggered_submissions(self):
        jobs = table2_batch("grep", scale=0.02, stagger=50.0)
        sim = Simulation(
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=4),
            scheduler=RandomScheduler(),
            jobs=jobs,
            seed=1,
        )
        result = sim.run()
        recs = {r.job_id: r for r in result.collector.job_records}
        for i, spec in enumerate(jobs):
            assert recs[spec.job_id].submit == pytest.approx(50.0 * i)

    def test_duplicate_job_ids_rejected(self):
        jobs = table2_batch("grep", scale=0.02)
        with pytest.raises(ValueError):
            Simulation(
                cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
                scheduler=RandomScheduler(),
                jobs=jobs + [jobs[0]],
            )

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            Simulation(
                cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
                scheduler=RandomScheduler(),
                jobs=[],
            )


class TestAssignMultiple:
    def test_single_assignment_throttles_ramp(self):
        """With assignmultiple off (Hadoop 1.2.1 default), at most one map
        task starts per node heartbeat, so the initial ramp is slower."""

        def ramp(assign_multiple):
            config = EngineConfig(assign_multiple=assign_multiple)
            sim = simple_sim(num_maps=48, num_reduces=2, config=config)
            result = sim.run()
            starts = sorted(
                t.start for t in result.collector.task_records if t.kind == "map"
            )
            return starts[11]  # time by which 12 maps have launched

        assert ramp(False) > ramp(True)


class TestHorizonGuard:
    def test_unfinishable_run_raises(self):
        config = EngineConfig(horizon=10.0)

        class NeverScheduler(RandomScheduler):
            name = "never"

            def select_map(self, node, job, ctx):
                return None

            def select_reduce(self, node, job, ctx):
                return None

        sim = simple_sim(NeverScheduler(), config=config)
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_returns_partial(self):
        sim = simple_sim()
        result = sim.run(until=1.0)
        assert result.sim_time == 1.0


class TestLocalityClassification:
    def test_map_locality_recorded(self):
        sim = simple_sim(num_maps=20)
        result = sim.run()
        nn = sim.tracker.namenode
        job = sim.tracker.finished_jobs[0]
        recs = {
            t.index: t for t in result.collector.task_records if t.kind == "map"
        }
        for m in job.maps:
            rec = recs[m.index]
            if nn.is_local(m.block, rec.node):
                assert rec.locality == "node"
                assert rec.bytes_moved == 0.0
            else:
                assert rec.locality in ("rack", "remote")
                assert rec.bytes_moved == pytest.approx(m.size)

    def test_map_cost_matches_formula(self):
        sim = simple_sim(num_maps=12)
        result = sim.run()
        nn = sim.tracker.namenode
        job = sim.tracker.finished_jobs[0]
        recs = {
            t.index: t for t in result.collector.task_records if t.kind == "map"
        }
        for m in job.maps:
            _, hops = nn.closest_replica(m.block, recs[m.index].node)
            assert recs[m.index].cost == pytest.approx(m.size * hops)


class TestDeterminism:
    def test_same_seed_same_results(self):
        def fingerprint(seed):
            sim = simple_sim(seed=seed, num_maps=12, num_reduces=4)
            result = sim.run()
            return [
                (t.kind, t.index, t.node, round(t.start, 9), round(t.end, 9))
                for t in result.collector.task_records
            ]

        assert fingerprint(9) == fingerprint(9)

    def test_different_seed_different_results(self):
        def fingerprint(seed):
            sim = simple_sim(seed=seed, num_maps=12, num_reduces=4)
            result = sim.run()
            return tuple(
                (t.kind, t.index, t.node) for t in result.collector.task_records
            )

        assert fingerprint(1) != fingerprint(2)


class TestProgressReporting:
    def test_d_read_monotone_and_bounded(self):
        sim = simple_sim(num_maps=6)
        sim.tracker.start()
        job = None
        previous = {}
        for _ in range(200):
            if not sim.sim.step():
                break
            if job is None and sim.tracker.active_jobs:
                job = sim.tracker.active_jobs[0]
            if job is not None:
                for m in job.maps:
                    d = m.d_read(sim.sim.now)
                    assert 0.0 <= d <= m.size * (1 + 1e-9)
                    assert d >= previous.get(m.index, 0.0) - 1e-6
                    previous[m.index] = d

    def test_current_output_scales_with_progress(self):
        sim = simple_sim(num_maps=4, num_reduces=3)
        sim.tracker.start()
        sim.sim.run(until=6.0)
        job = sim.tracker.active_jobs[0]
        for m in job.running_maps():
            frac = m.read_fraction(sim.sim.now)
            out = m.current_output(sim.sim.now)
            assert np.allclose(out, job.I[m.index] * frac)
