"""Tests for the statistics helpers (repro.analysis.stats)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    BootstrapCI,
    paired_bootstrap_ci,
    paired_permutation_test,
    seed_sweep,
)


class TestBootstrapCI:
    def test_clear_difference_excludes_zero(self):
        rng = np.random.default_rng(0)
        base = rng.normal(100, 5, size=40)
        ours = base - 20 + rng.normal(0, 2, size=40)
        ci = paired_bootstrap_ci(base, ours, seed=1)
        assert ci.mean == pytest.approx(20, abs=3)
        assert ci.excludes_zero
        assert ci.low < ci.mean < ci.high

    def test_no_difference_includes_zero(self):
        rng = np.random.default_rng(1)
        base = rng.normal(100, 10, size=60)
        ours = base + rng.normal(0, 10, size=60)
        ci = paired_bootstrap_ci(base, ours, seed=2)
        assert not ci.excludes_zero

    def test_interval_narrows_with_confidence(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, 50)
        b = rng.normal(0, 1, 50)
        wide = paired_bootstrap_ci(a, b, confidence=0.99, seed=3)
        narrow = paired_bootstrap_ci(a, b, confidence=0.80, seed=3)
        assert (wide.high - wide.low) > (narrow.high - narrow.low)

    def test_deterministic_given_seed(self):
        a = np.arange(10.0)
        b = np.arange(10.0)[::-1]
        assert paired_bootstrap_ci(a, b, seed=5) == paired_bootstrap_ci(a, b, seed=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap_ci([1.0], [2.0])
        with pytest.raises(ValueError):
            paired_bootstrap_ci([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            paired_bootstrap_ci([1.0, 2.0], [1.0, 2.0], confidence=1.5)
        with pytest.raises(ValueError):
            paired_bootstrap_ci([1.0, 2.0], [1.0, 2.0], n_boot=10)

    def test_str_format(self):
        ci = BootstrapCI(mean=1.0, low=0.5, high=1.5, confidence=0.95)
        assert "95% CI" in str(ci)


class TestPermutationTest:
    def test_detects_real_difference(self):
        rng = np.random.default_rng(3)
        base = rng.normal(100, 5, size=30)
        ours = base - 15
        p = paired_permutation_test(base, ours, seed=4)
        assert p < 0.01

    def test_null_gives_large_p(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0, 1, size=50)
        b = a + rng.normal(0, 1, size=50)
        p = paired_permutation_test(a, b, seed=5)
        assert p > 0.05

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_p_value_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(0, 1, size=12)
        b = rng.normal(0, 1, size=12)
        p = paired_permutation_test(a, b, n_perm=500, seed=seed)
        assert 0.0 < p <= 1.0

    def test_uniform_under_null(self):
        """Across many null datasets, small p-values appear at ~their rate."""
        rng = np.random.default_rng(6)
        rejections = 0
        trials = 100
        for i in range(trials):
            a = rng.normal(0, 1, size=20)
            b = a + rng.choice([-1, 1], size=20) * rng.normal(0, 1, size=20)
            if paired_permutation_test(a, b, n_perm=400, seed=i) < 0.1:
                rejections += 1
        assert rejections < trials * 0.25  # ~10% expected, generous bound


class TestSeedSweep:
    def test_aggregates_mean_and_se(self):
        def run(seed):
            rng = np.random.default_rng(seed)
            return {"a": 10 + rng.normal(), "b": 20 + rng.normal()}

        out = seed_sweep(run, seeds=range(20))
        assert out["a"][0] == pytest.approx(10, abs=1)
        assert out["b"][0] == pytest.approx(20, abs=1)
        assert 0 < out["a"][1] < 1

    def test_single_seed_zero_se(self):
        out = seed_sweep(lambda s: {"x": 1.0}, seeds=[0])
        assert out["x"] == (1.0, 0.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            seed_sweep(lambda s: {}, seeds=[])

    def test_with_real_simulations(self):
        """Tiny end-to-end sweep: the PNA-vs-coupling gap holds across seeds."""
        from repro.cluster import ClusterSpec
        from repro.core import ProbabilisticNetworkAwareScheduler
        from repro.engine import Simulation
        from repro.schedulers import CouplingScheduler
        from repro.workload import table2_batch

        def run(seed):
            out = {}
            for name, sched in (
                ("pna", ProbabilisticNetworkAwareScheduler()),
                ("coupling", CouplingScheduler()),
            ):
                sim = Simulation(
                    cluster=ClusterSpec(num_racks=2, nodes_per_rack=4),
                    scheduler=sched,
                    jobs=table2_batch("terasort", scale=0.03),
                    seed=seed,
                )
                out[name] = sim.run().mean_jct
            return out

        sweep = seed_sweep(run, seeds=[1, 2, 3])
        assert sweep["pna"][0] < sweep["coupling"][0]
