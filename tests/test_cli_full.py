"""CLI coverage for every experiment command, on a tiny injected scenario."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.cluster import ClusterSpec
from repro.experiments import SCENARIOS, Scenario

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"


@pytest.fixture(scope="module", autouse=True)
def tiny_scenario():
    """Register a seconds-scale scenario and expose it to the CLI."""

    def factory():
        return Scenario(
            name="clitest",
            cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
            scale=0.02,
            background=None,
            seed=17,
        )

    SCENARIOS["clitest"] = factory
    yield
    del SCENARIOS["clitest"]


def run_cli(capsys, *args):
    assert main([*args, "--scenario", "clitest"]) == 0
    return capsys.readouterr().out


class TestFigureCommands:
    def test_fig4(self, capsys):
        out = run_cli(capsys, "fig4")
        assert "Figure 4" in out
        assert "probabilistic" in out and "coupling" in out and "fair" in out

    def test_fig5(self, capsys):
        out = run_cli(capsys, "fig5")
        assert "Figure 5" in out
        assert "vs_coupling" in out

    def test_fig6(self, capsys):
        out = run_cli(capsys, "fig6")
        assert "Figure 6 (map)" in out or "map task time" in out
        assert "reduce task time" in out

    def test_table3(self, capsys):
        out = run_cli(capsys, "table3")
        assert "Table III" in out
        assert "% of local node tasks" in out

    def test_fig7(self, capsys):
        out = run_cli(capsys, "fig7")
        assert "Figure 7" in out
        assert "input (GB)" in out

    def test_util(self, capsys):
        out = run_cli(capsys, "util")
        assert "utilisation" in out
        assert "%" in out

    def test_theory(self, capsys):
        out = run_cli(capsys, "theory")
        assert "P_min" in out
        assert "accept rate" in out


class TestSweepCommands:
    """The long-running sweep commands, on the seconds-scale scenario."""

    def test_pmin(self, capsys):
        out = run_cli(capsys, "pmin")
        assert "P_min sweep" in out
        assert "0.4" in out

    def test_ablations(self, capsys):
        out = run_cli(capsys, "ablations")
        assert "A1" in out and "A4" in out
        assert "network-condition" in out
        assert "oracle" in out

    def test_bandwidth(self, capsys):
        out = run_cli(capsys, "bandwidth")
        assert "bg intensity" in out


class TestStaticAnalysisCommands:
    """`repro lint` / `repro check` dispatch and their shared exit-code
    contract: 0 clean, 1 findings, 2 usage-or-parse-error."""

    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0

    def test_check_clean_tree_exits_zero(self, capsys):
        assert main(["check", "--no-baseline", str(SRC)]) == 0

    def test_lint_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "engine"
        bad.mkdir(parents=True)
        (bad / "mod.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        assert main(["lint", str(tmp_path)]) == 1

    def test_check_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(
            "import numpy as np\nrng = np.random.default_rng()\n",
            encoding="utf-8",
        )
        assert main(["check", "--no-baseline", str(tmp_path)]) == 1
        assert "rng-ambient" in capsys.readouterr().out

    @pytest.mark.parametrize("command", ["lint", "check"])
    def test_parse_error_exits_two(self, command, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("def broken(:\n", encoding="utf-8")
        argv = [command, str(tmp_path)]
        if command == "check":
            argv.insert(1, "--no-baseline")
        assert main(argv) == 2

    @pytest.mark.parametrize("command", ["lint", "check"])
    def test_usage_error_exits_two(self, command, capsys):
        assert main([command, "--select", "bogus", str(SRC)]) == 2

    @pytest.mark.parametrize("command", ["lint", "check"])
    def test_format_json_supported(self, command, capsys):
        argv = [command, "--format", "json", str(SRC)]
        if command == "check":
            argv.insert(1, "--no-baseline")
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == f"repro-{command}"

    def test_check_sarif_format_supported(self, capsys):
        assert main(
            ["check", "--no-baseline", "--format", "sarif", str(SRC)]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"


class TestArgumentHandling:
    def test_unknown_scenario_fails_cleanly(self):
        with pytest.raises(ValueError):
            main(["table2", "--scenario", "galaxy"])

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0


class TestObservabilityCommands:
    def test_run_metrics_then_report_dashboard(self, tmp_path, capsys):
        path = str(tmp_path / "metrics.jsonl")
        code = main([
            "run", "--scenario", "clitest", "--jobs", "2",
            "--metrics", path, "--metrics-period", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jct percentiles" in out
        assert f"metrics appended to {path}" in out

        assert main(["report", path]) == 0
        report = capsys.readouterr().out
        assert "metrics dashboard" in report
        assert "slots_busy{kind=map}" in report
        assert "job_completion_s" in report

    def test_report_still_renders_event_traces(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        assert main([
            "run", "--scenario", "clitest", "--jobs", "2", "--trace", path,
        ]) == 0
        capsys.readouterr()
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "metrics dashboard" not in out

    def test_run_rejects_bad_metrics_period(self, tmp_path, capsys):
        code = main([
            "run", "--scenario", "clitest",
            "--metrics", str(tmp_path / "m.jsonl"), "--metrics-period", "0",
        ])
        assert code == 2
        assert "--metrics-period" in capsys.readouterr().err

    def test_profile_command(self, monkeypatch, capsys, tmp_path):
        import repro.experiments.perf as perf

        def fake_profile_case(case):
            return {
                "format": "repro-profile", "version": 1,
                "wall_s": 1.0, "attributed_s": 0.9, "coverage": 0.9,
                "components": {
                    "network.refill": {"self_s": 0.9, "calls": 10},
                },
                "case": case.name, "nodes": case.cluster.num_nodes,
                "events": 1234,
            }

        monkeypatch.setattr(perf, "profile_case", fake_profile_case)
        out_path = str(tmp_path / "profile.json")
        assert main(["profile", "--quick", "--out", out_path]) == 0
        out = capsys.readouterr().out
        assert "profiling pna_netcond" in out
        assert "network.refill" in out
        assert "(total attributed)" in out
        doc = json.loads(Path(out_path).read_text())
        assert doc["format"] == "repro-profile"
        assert doc["case"] == "pna_netcond"
