"""Durability-plane tests: the NameNode ReplicationMonitor end to end.

Covers the acceptance criteria of the durability work: config validation,
transparency (a monitor-off run is byte-identical, and a *fault-free*
monitor-on run is too), crash-triggered re-replication back to full RF,
repair cancellation when a source dies mid-copy, churn convergence with
zero permanent loss, RF=1 data-loss degradation (typed ``block_lost`` /
``input_lost`` accounting, deterministic termination under both
``on_data_loss`` policies), drain-safe decommissioning versus crash,
over-replication trimming after rejoin, hot-block extra replicas, and the
durability instruments of the metrics plane.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSpec
from repro.engine import EngineConfig, Simulation
from repro.faults import FaultPlan, NodeChurn, NodeCrash, NodeDecommission
from repro.hdfs import DurabilityConfig
from repro.obs import MetricsConfig
from repro.schedulers import FairScheduler
from repro.trace import jsonl_lines
from repro.trace.events import (
    INPUT_LOST,
    AttemptFailed,
    BlockLost,
    DecommissionDone,
    DecommissionStart,
    JobFail,
    ReplicaAdded,
    ReplicaRemoved,
)
from repro.units import MB
from repro.workload import JobSpec

DURABILITY_EVENT_TYPES = (
    "replica_added",
    "replica_removed",
    "block_lost",
    "decommission_start",
    "decommission_done",
)


def jobs(n=2, num_maps=6, app="wordcount"):
    return [
        JobSpec.make(f"{i:02d}", app, num_maps * 64 * MB, num_maps, 2)
        for i in range(1, n + 1)
    ]


def run(plan=None, seed=7, n_jobs=2, **knobs):
    sim = Simulation(
        cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
        scheduler=FairScheduler(),
        jobs=jobs(n_jobs),
        seed=seed,
        config=EngineConfig(faults=plan, **knobs),
    )
    return sim, sim.run()


def live_replicas(sim, block):
    return [r for r in block.replicas if sim.cluster.node(r).alive]


# ----------------------------------------------------------------------
# configuration validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_knob_bounds(self):
        with pytest.raises(ValueError):
            DurabilityConfig(check_period=0.0)
        with pytest.raises(ValueError):
            DurabilityConfig(max_repairs=0)
        with pytest.raises(ValueError):
            DurabilityConfig(repair_rate=0.0)
        with pytest.raises(ValueError):
            DurabilityConfig(on_data_loss="panic")
        with pytest.raises(ValueError):
            DurabilityConfig(loss_grace=-1.0)
        with pytest.raises(ValueError):
            DurabilityConfig(hot_threshold=-1)
        with pytest.raises(ValueError):
            DurabilityConfig(hot_extra=0)
        DurabilityConfig(loss_grace=0.0)  # fail-at-first-poll is allowed

    def test_engine_config_type_checked(self):
        with pytest.raises(ValueError, match="DurabilityConfig"):
            EngineConfig(durability={"max_repairs": 4})

    def test_decommission_requires_durability_plane(self):
        plan = FaultPlan(
            decommissions=(NodeDecommission(at=10.0, node="r0n1"),)
        )
        with pytest.raises(ValueError, match="durability"):
            Simulation(
                cluster=ClusterSpec(num_racks=2, nodes_per_rack=3),
                scheduler=FairScheduler(),
                jobs=jobs(1),
                config=EngineConfig(faults=plan),
            )


# ----------------------------------------------------------------------
# transparency: nothing changes unless something needs repairing
# ----------------------------------------------------------------------
class TestTransparency:
    def test_fault_free_run_identical_with_monitor_on(self):
        """With no faults every block stays at target, so the monitor's
        ticks must not move a single event: the on/off traces are equal."""
        sim_off, res_off = run(trace=True)
        sim_on, res_on = run(trace=True, durability=DurabilityConfig())
        assert sim_off.replication is None
        assert sim_on.replication is not None
        assert jsonl_lines(res_off.trace.events) == jsonl_lines(
            res_on.trace.events
        )
        assert sim_on.replication.repairs_started == 0
        assert sim_on.replication.fully_replicated_at is not None

    def test_monitor_off_run_emits_no_durability_state(self):
        plan = FaultPlan(churn=NodeChurn(level=0.10, mean_downtime=60.0))
        sim, res = run(plan=plan, trace=True, tracker_expiry_interval=9.0)
        assert sim.replication is None
        types = {e.type for e in res.trace.events}
        assert not types & set(DURABILITY_EVENT_TYPES)
        c = res.collector
        assert (
            c.replicas_added, c.replicas_removed, c.blocks_lost,
            c.repair_bytes, c.decommissions,
        ) == (0, 0, 0, 0.0, 0)

    def test_monitor_on_run_is_deterministic(self):
        plan = FaultPlan(churn=NodeChurn(level=0.10, mean_downtime=60.0))
        _, r1 = run(plan=plan, trace=True, tracker_expiry_interval=9.0,
                    durability=DurabilityConfig())
        _, r2 = run(plan=plan, trace=True, tracker_expiry_interval=9.0,
                    durability=DurabilityConfig())
        assert jsonl_lines(r1.trace.events) == jsonl_lines(r2.trace.events)


# ----------------------------------------------------------------------
# re-replication
# ----------------------------------------------------------------------
class TestRepair:
    def test_permanent_crash_repairs_back_to_full_rf(self):
        plan = FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1"),))
        sim, res = run(plan=plan, trace=True, tracker_expiry_interval=9.0,
                       durability=DurabilityConfig())
        mon = sim.replication
        adds = [e for e in res.trace.events if isinstance(e, ReplicaAdded)]
        assert adds
        assert all(e.src != "r0n1" and e.node != "r0n1" for e in adds)
        assert res.collector.replicas_added == len(adds)
        assert res.collector.repair_bytes == pytest.approx(
            sum(e.size for e in adds)
        )
        assert mon.under_replicated_count() == 0
        assert mon.lost_blocks() == []
        assert mon.fully_replicated_at is not None
        for block in sim.namenode.blocks():
            assert len(live_replicas(sim, block)) >= 2
        assert res.collector.job_completion_times().size == 2

    def test_repair_traffic_is_real_flow_traffic(self):
        """Repair bytes cross the fabric: the faulted+repaired run moves
        more fabric bytes than the same faulted run without the monitor."""
        plan = FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1"),))
        sim_off, _ = run(plan=plan, tracker_expiry_interval=9.0)
        sim_on, _ = run(plan=plan, tracker_expiry_interval=9.0,
                        durability=DurabilityConfig())
        assert sim_on.replication.repair_bytes > 0
        assert (
            sim_on.cluster.network.bytes_transferred
            > sim_off.cluster.network.bytes_transferred
        )

    def test_repair_rate_cap_slows_convergence(self):
        plan = FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1"),))
        sim_fast, _ = run(plan=plan, tracker_expiry_interval=9.0,
                          durability=DurabilityConfig())
        sim_slow, _ = run(plan=plan, tracker_expiry_interval=9.0,
                          durability=DurabilityConfig(repair_rate=2 * MB))
        assert sim_slow.replication.fully_replicated_at is not None
        assert (
            sim_slow.replication.fully_replicated_at
            > sim_fast.replication.fully_replicated_at
        )

    def test_source_death_cancels_inflight_repairs(self):
        """A node dying mid-copy kills the repair flows it served and the
        blocks are re-queued (ref-counted cancellation, not a leak)."""
        plan = FaultPlan(crashes=(
            NodeCrash(at=10.0, node="r0n1"),
            NodeCrash(at=13.0, node="r1n1", down_for=120.0),
        ))
        sim, res = run(
            plan=plan, trace=True, tracker_expiry_interval=9.0,
            durability=DurabilityConfig(repair_rate=2 * MB, max_repairs=16),
        )
        mon = sim.replication
        assert mon.repairs_cancelled >= 1
        assert mon.under_replicated_count() == 0
        for block in sim.namenode.blocks():
            assert len(live_replicas(sim, block)) >= 2

    def test_churn_converges_with_zero_permanent_loss(self):
        """The PR-3 churn shape at RF=2: every under-replicated block is
        repaired back to target and nothing is lost for good."""
        plan = FaultPlan(churn=NodeChurn(level=0.2, mean_downtime=20.0))
        sim, res = run(plan=plan, trace=True, tracker_expiry_interval=9.0,
                       durability=DurabilityConfig(),
                       check_invariants=True)
        mon = sim.replication
        assert res.collector.replicas_added >= 1
        assert mon.lost_blocks() == []
        assert mon.under_replicated_count() == 0
        assert res.collector.job_completion_times().size == 2
        assert not res.collector.failed_jobs


# ----------------------------------------------------------------------
# data loss and degradation
# ----------------------------------------------------------------------
class TestDataLoss:
    def _rf1_plan(self):
        # RF=1 and a permanent crash: every block on the dead node is gone
        return FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1"),))

    def test_rf1_crash_terminates_with_typed_accounting(self):
        sim, res = run(
            plan=self._rf1_plan(), trace=True, tracker_expiry_interval=9.0,
            replication=1,
            durability=DurabilityConfig(loss_grace=5.0),
        )
        mon = sim.replication
        losses = [e for e in res.trace.events if isinstance(e, BlockLost)]
        assert losses
        assert res.collector.blocks_lost == len(losses)
        assert mon.lost_blocks()
        assert mon.unrepairable(mon.lost_blocks()[0])
        input_lost = [
            e for e in res.trace.events
            if isinstance(e, AttemptFailed) and e.reason == INPUT_LOST
        ]
        assert input_lost
        # charged failures exhaust the budget: the affected jobs abort,
        # the rest of the batch still finishes — the run never hangs
        assert res.collector.failed_jobs
        fails = [e for e in res.trace.events if isinstance(e, JobFail)]
        assert fails

    def test_input_lost_failures_never_blacklist(self):
        _, res = run(
            plan=self._rf1_plan(), trace=True, tracker_expiry_interval=9.0,
            replication=1,
            durability=DurabilityConfig(loss_grace=5.0),
        )
        assert res.collector.blacklistings == 0

    def test_abort_policy_fails_job_at_grace_expiry(self):
        _, res = run(
            plan=self._rf1_plan(), trace=True, tracker_expiry_interval=9.0,
            replication=1,
            durability=DurabilityConfig(loss_grace=5.0, on_data_loss="abort"),
        )
        fails = [e for e in res.trace.events if isinstance(e, JobFail)]
        assert fails
        assert any(e.reason == INPUT_LOST for e in fails)

    def test_loss_grace_lets_a_revival_win(self):
        """Both policies survive a transient total outage that heals inside
        the grace window: the block leaves the lost set and no job fails."""
        plan = FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1",
                                            down_for=20.0),))
        sim, res = run(
            plan=plan, trace=True, tracker_expiry_interval=9.0,
            replication=1,
            durability=DurabilityConfig(loss_grace=60.0),
        )
        mon = sim.replication
        assert res.collector.blocks_lost >= 1   # the outage was detected
        assert mon.blocks_recovered >= 1        # ... and healed
        assert mon.lost_blocks() == []
        assert not res.collector.failed_jobs
        assert res.collector.job_completion_times().size == 2

    def test_rf1_run_is_deterministic(self):
        kw = dict(
            plan=self._rf1_plan(), trace=True, tracker_expiry_interval=9.0,
            replication=1, durability=DurabilityConfig(loss_grace=5.0),
        )
        _, r1 = run(**kw)
        _, r2 = run(**kw)
        assert jsonl_lines(r1.trace.events) == jsonl_lines(r2.trace.events)


# ----------------------------------------------------------------------
# decommissioning
# ----------------------------------------------------------------------
class TestDecommission:
    def test_drain_safe_release(self):
        plan = FaultPlan(
            decommissions=(NodeDecommission(at=15.0, node="r0n1"),)
        )
        sim, res = run(plan=plan, trace=True, durability=DurabilityConfig())
        mon = sim.replication
        starts = [
            e for e in res.trace.events if isinstance(e, DecommissionStart)
        ]
        dones = [
            e for e in res.trace.events if isinstance(e, DecommissionDone)
        ]
        assert [e.node for e in starts] == ["r0n1"]
        assert [e.node for e in dones] == ["r0n1"]
        assert dones[0].t >= starts[0].t
        assert res.collector.decommissions == 1
        assert sim.faults.decommissions_injected == 1
        # released: out of service, its copies dropped from the metadata
        assert not sim.cluster.node("r0n1").alive
        for block in sim.namenode.blocks():
            assert "r0n1" not in block.replicas
            assert len(live_replicas(sim, block)) >= 2
        # drain-safe: re-replicated *before* release, nothing was ever lost
        assert res.collector.blocks_lost == 0
        assert mon.lost_blocks() == []
        assert res.collector.job_completion_times().size == 2

    def test_decommission_vs_crash_loses_nothing_at_rf1(self):
        """The whole point of draining: at RF=1 a crash loses blocks but a
        decommission of the same node at the same time loses none."""
        crash = FaultPlan(crashes=(NodeCrash(at=15.0, node="r0n1"),))
        drain = FaultPlan(
            decommissions=(NodeDecommission(at=15.0, node="r0n1"),)
        )
        kw = dict(trace=True, tracker_expiry_interval=9.0, replication=1,
                  durability=DurabilityConfig(loss_grace=5.0))
        _, res_crash = run(plan=crash, **kw)
        _, res_drain = run(plan=drain, **kw)
        assert res_crash.collector.blocks_lost >= 1
        assert res_crash.collector.failed_jobs
        assert res_drain.collector.blocks_lost == 0
        assert not res_drain.collector.failed_jobs
        assert res_drain.collector.job_completion_times().size == 2

    def test_decommission_of_dead_node_is_noop(self):
        plan = FaultPlan(
            crashes=(NodeCrash(at=5.0, node="r0n1"),),
            decommissions=(NodeDecommission(at=10.0, node="r0n1"),),
        )
        sim, res = run(plan=plan, tracker_expiry_interval=9.0,
                       durability=DurabilityConfig())
        assert sim.faults.decommissions_injected == 0
        assert res.collector.decommissions == 0


# ----------------------------------------------------------------------
# trimming and hot blocks
# ----------------------------------------------------------------------
class TestTrimAndHotBlocks:
    def test_rejoin_over_replication_is_trimmed(self):
        plan = FaultPlan(crashes=(NodeCrash(at=5.0, node="r0n1",
                                            down_for=15.0),))
        sim, res = run(plan=plan, trace=True, tracker_expiry_interval=9.0,
                       durability=DurabilityConfig())
        mon = sim.replication
        removed = [
            e for e in res.trace.events if isinstance(e, ReplicaRemoved)
        ]
        assert removed
        assert res.collector.replicas_removed == len(removed)
        assert mon.replicas_trimmed >= 1
        # every block settles back at exactly its target
        for block in sim.namenode.blocks():
            assert len(live_replicas(sim, block)) == mon.target(block)

    def test_trim_can_be_disabled(self):
        plan = FaultPlan(crashes=(NodeCrash(at=5.0, node="r0n1",
                                            down_for=15.0),))
        sim, res = run(plan=plan, tracker_expiry_interval=9.0,
                       durability=DurabilityConfig(trim_excess=False))
        assert res.collector.replicas_removed == 0
        assert any(
            len(live_replicas(sim, b)) > 2 for b in sim.namenode.blocks()
        )

    def test_hot_blocks_gain_extra_replicas(self):
        sim, res = run(trace=True,
                       durability=DurabilityConfig(hot_threshold=1))
        mon = sim.replication
        assert res.collector.replicas_added >= 1
        assert any(
            len(b.replicas) == 3 for b in sim.namenode.blocks()
        )
        assert mon.under_replicated_count() == 0

    def test_cold_threshold_never_triggers(self):
        sim, _ = run(durability=DurabilityConfig(hot_threshold=10 ** 6))
        assert sim.replication.repairs_started == 0


# ----------------------------------------------------------------------
# observability
# ----------------------------------------------------------------------
class TestObservability:
    def test_metrics_export_gains_durability_series(self, tmp_path):
        plan = FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1"),))
        on = tmp_path / "on.jsonl"
        off = tmp_path / "off.jsonl"
        run(plan=plan, tracker_expiry_interval=9.0,
            durability=DurabilityConfig(),
            metrics=MetricsConfig(jsonl=str(on)))
        run(plan=plan, tracker_expiry_interval=9.0,
            metrics=MetricsConfig(jsonl=str(off)))
        on_text = on.read_text(encoding="utf-8")
        assert "under_replicated_blocks" in on_text
        assert "repair_bytes_total" in on_text
        assert "under_replicated_blocks" not in off.read_text(
            encoding="utf-8"
        )

    def test_summary_reports_durability_line(self):
        plan = FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1"),))
        _, res = run(plan=plan, tracker_expiry_interval=9.0,
                     durability=DurabilityConfig())
        assert "durability:" in res.summary()
        _, res_off = run(plan=plan, tracker_expiry_interval=9.0)
        assert "durability:" not in res_off.summary()

    def test_run_end_invariant_checks_convergence(self):
        plan = FaultPlan(crashes=(NodeCrash(at=10.0, node="r0n1"),))
        sim, _ = run(plan=plan, tracker_expiry_interval=9.0,
                     durability=DurabilityConfig(), check_invariants=True)
        assert sim.tracker.invariants is not None
        assert sim.tracker.invariants.checks_run > 0
